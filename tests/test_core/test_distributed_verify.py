"""Tests for the one-round distributed (maximal) independence check."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import is_independent, is_maximal_independent_set
from repro.core.distributed_verify import distributed_independence_check
from repro.graphs import WeightedGraph, cycle, empty, gnp, path, star
from repro.mis import greedy_mis, luby_mis


class TestIndependence:
    def test_accepts_valid_set(self):
        g = cycle(8)
        ok, metrics = distributed_independence_check(g, {0, 2, 4})
        assert ok
        assert metrics.rounds == 1

    def test_rejects_adjacent_pair(self):
        ok, _ = distributed_independence_check(path(4), {1, 2})
        assert not ok

    def test_empty_set_accepted(self):
        ok, _ = distributed_independence_check(cycle(5), set())
        assert ok

    def test_empty_graph(self):
        ok, metrics = distributed_independence_check(empty(0), set())
        assert ok and metrics.rounds == 0


class TestMaximality:
    def test_accepts_mis(self):
        g = gnp(60, 0.1, seed=1)
        mis = greedy_mis(g)
        ok, _ = distributed_independence_check(g, mis, maximality=True)
        assert ok

    def test_rejects_non_maximal(self):
        ok, _ = distributed_independence_check(path(5), {0}, maximality=True)
        assert not ok

    def test_isolated_nonmember_rejected(self):
        ok, _ = distributed_independence_check(empty(3), {0}, maximality=True)
        assert not ok

    def test_star_cases(self):
        g = star(4)
        assert distributed_independence_check(g, {0}, maximality=True)[0]
        assert distributed_independence_check(g, set(range(1, 5)),
                                              maximality=True)[0]
        assert not distributed_independence_check(g, {0, 1})[0]


@st.composite
def graph_and_subset(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=30)) if possible else []
    subset = draw(st.sets(st.integers(0, n - 1)))
    return WeightedGraph.from_edges(range(n), edges), subset


@given(graph_and_subset())
@settings(max_examples=80, deadline=None)
def test_matches_centralized_verdicts(case):
    g, subset = case
    dist_ind, _ = distributed_independence_check(g, subset)
    assert dist_ind == is_independent(g, subset)
    dist_max, _ = distributed_independence_check(g, subset, maximality=True)
    assert dist_max == is_maximal_independent_set(g, subset)


def test_pipeline_outputs_self_verify():
    from repro.core import theorem2_maxis
    from repro.graphs import uniform_weights

    g = uniform_weights(gnp(80, 0.1, seed=2), 1, 20, seed=3)
    res = theorem2_maxis(g, 0.5, seed=4)
    ok, metrics = distributed_independence_check(g, res.independent_set)
    assert ok
    assert metrics.rounds == 1

    mis = luby_mis(g, seed=5)
    ok, _ = distributed_independence_check(g, mis.independent_set, maximality=True)
    assert ok
