"""The exact solver against a brute-force bitmask oracle."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import exact_max_weight_is
from repro.graphs import WeightedGraph, complement, gnp, uniform_weights
from tests.oracle import brute_force_max_weight_is, count_independent_sets


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("p", [0.15, 0.4, 0.7])
def test_solver_matches_oracle_random(seed, p):
    g = uniform_weights(gnp(14, p, seed=seed), 1, 20, seed=seed + 100)
    _, fast = exact_max_weight_is(g)
    _, slow = brute_force_max_weight_is(g)
    assert fast == pytest.approx(slow)


@st.composite
def tiny_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=25)) if possible else []
    weights = {v: float(draw(st.integers(0, 30))) for v in range(n)}
    return WeightedGraph.from_edges(range(n), edges, weights)


@given(tiny_graphs())
@settings(max_examples=80, deadline=None)
def test_solver_matches_oracle_hypothesis(g):
    _, fast = exact_max_weight_is(g)
    _, slow = brute_force_max_weight_is(g)
    assert abs(fast - slow) < 1e-9


@given(tiny_graphs())
@settings(max_examples=30, deadline=None)
def test_clique_complement_duality(g):
    """MaxWIS(G) equals the max-weight clique of the complement: check by
    solving MaxWIS on the double complement."""
    _, a = exact_max_weight_is(g)
    _, b = exact_max_weight_is(complement(complement(g)))
    assert abs(a - b) < 1e-9


def test_independent_set_counts_sane():
    from repro.graphs import cycle, path

    # Known values: IS counts (incl. empty) of P_n follow Fibonacci.
    assert count_independent_sets(path(4)) == 8
    assert count_independent_sets(path(5)) == 13
    # C_n: Lucas numbers.
    assert count_independent_sets(cycle(5)) == 11
    assert count_independent_sets(cycle(6)) == 18
