"""Tests for the baselines: Bar-Yehuda et al. [8] and centralized greedy."""

import pytest

from repro.core import (
    bar_yehuda_maxis,
    exact_max_weight_is,
    greedy_maxis,
    is_independent,
    mis_baseline,
)
from repro.graphs import empty, gnp, integer_weights, path, star, uniform_weights


class TestBarYehuda:
    def test_output_independent(self):
        g = integer_weights(gnp(80, 0.1, seed=1), 100, seed=2)
        res = bar_yehuda_maxis(g, seed=3)
        assert is_independent(g, res.independent_set)

    @pytest.mark.parametrize("seed", range(3))
    def test_delta_approximation(self, seed):
        g = integer_weights(gnp(40, 0.15, seed=seed), 50, seed=seed + 4)
        _, opt = exact_max_weight_is(g)
        res = bar_yehuda_maxis(g, seed=seed)
        # The reconstruction's practical factor: within 2Δ of OPT always,
        # and empirically much closer.
        assert res.weight(g) * 2 * max(1, g.max_degree) + 1e-9 >= opt

    def test_rounds_grow_with_log_w(self):
        g10 = integer_weights(gnp(80, 0.1, seed=5), 10, seed=6)
        g6 = g10.with_weights({v: g10.weight(v) * 10 ** 5 for v in g10.nodes})
        r10 = bar_yehuda_maxis(g10, seed=7)
        r6 = bar_yehuda_maxis(g6, seed=7)
        assert r6.metadata["log_w_levels"] > r10.metadata["log_w_levels"]
        assert r6.rounds > r10.rounds

    def test_consumes_all_weight(self):
        g = integer_weights(gnp(50, 0.15, seed=8), 30, seed=9)
        res = bar_yehuda_maxis(g, seed=10)
        assert res.metadata["residual_weight_left"] == 0.0

    def test_stack_property(self):
        g = integer_weights(gnp(50, 0.15, seed=8), 30, seed=9)
        res = bar_yehuda_maxis(g, seed=10)
        assert res.weight(g) + 1e-9 >= res.metadata["stack_value"]

    def test_empty_and_zero_weight(self):
        assert bar_yehuda_maxis(empty(0)).independent_set == frozenset()
        g = path(3).with_weights({0: 0, 1: 0, 2: 0})
        assert bar_yehuda_maxis(g).independent_set == frozenset()

    def test_fractional_weights_cleanup_level(self):
        g = path(4).with_weights({0: 0.25, 1: 0.5, 2: 0.25, 3: 0.5})
        res = bar_yehuda_maxis(g, seed=11)
        assert is_independent(g, res.independent_set)
        assert res.weight(g) > 0


class TestGreedy:
    def test_picks_heaviest_first(self):
        g = star(4).with_weights({0: 10, 1: 1, 2: 1, 3: 1, 4: 1})
        assert greedy_maxis(g) == frozenset({0})

    def test_leaves_beat_light_hub(self):
        g = star(4).with_weights({0: 2, 1: 3, 2: 3, 3: 3, 4: 3})
        assert greedy_maxis(g) == frozenset({1, 2, 3, 4})

    def test_skips_zero_weight(self):
        g = path(3).with_weights({0: 0, 1: 1, 2: 0})
        assert greedy_maxis(g) == frozenset({1})

    def test_delta_approximation(self):
        for seed in range(4):
            g = uniform_weights(gnp(35, 0.2, seed=seed), 1, 10, seed=seed + 12)
            _, opt = exact_max_weight_is(g)
            got = g.total_weight(greedy_maxis(g))
            assert got * max(1, g.max_degree) + 1e-9 >= opt


class TestMISBaseline:
    def test_unweighted_delta_approx(self):
        g = gnp(40, 0.15, seed=13)
        _, opt = exact_max_weight_is(g)
        res = mis_baseline(g, seed=14)
        assert res.size * (g.max_degree + 1) >= opt  # MIS >= n/(Δ+1) >= OPT/(Δ+1)

    def test_weighted_can_be_terrible(self):
        # A star where the hub carries all the weight: an MIS that picks
        # the leaves gets weight 5 vs OPT 1000 — the motivating failure.
        g = star(5).with_weights({0: 1000.0, **{i: 1.0 for i in range(1, 6)}})
        res = mis_baseline(g, seed=0)
        if 0 not in res.independent_set:
            assert res.weight(g) == 5.0
