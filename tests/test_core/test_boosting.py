"""Tests for Theorem 10 (Algorithm 1 boosting) and Proposition 2."""

import pytest

from repro.core import (
    boost,
    certify_fraction_bound,
    good_nodes_approx,
    is_independent,
    phases_for,
)
from repro.graphs import empty, gnp, skewed_heavy_set, uniform_weights


def make_inner(**kwargs):
    # Phases run on small residual subgraphs; pin the knowledge bound so
    # the CONGEST budget reflects the original network (as the paper's
    # pipelines do).
    kwargs.setdefault("n_bound", 1024)

    def inner(graph, *, seed=None):
        return good_nodes_approx(graph, seed=seed, **kwargs)

    return inner


@pytest.fixture
def graph():
    return uniform_weights(gnp(70, 0.1, seed=1), 1, 30, seed=2)


class TestPhasesFor:
    def test_values(self):
        assert phases_for(4.0, 1.0) == 4
        assert phases_for(4.0, 0.5) == 8
        assert phases_for(1.0, 3.0) == 1  # never below one phase

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError):
            phases_for(4.0, 0.0)
        with pytest.raises(ValueError):
            phases_for(4.0, -1.0)


class TestBoost:
    def test_output_independent(self, graph):
        res = boost(graph, make_inner(), eps=0.5, c=8.0, seed=3)
        assert is_independent(graph, res.independent_set)

    def test_stack_property(self, graph):
        res = boost(graph, make_inner(), eps=0.5, c=8.0, seed=3)
        assert res.weight(graph) + 1e-9 >= res.metadata["stack_value"]

    def test_remark_bound(self, graph):
        # w(I) >= w(V)/((1+ε)(Δ+1)) — the Remark after Lemma 6.
        eps = 0.5
        res = boost(graph, make_inner(), eps=eps, c=8.0, seed=3)
        cert = certify_fraction_bound(
            graph, res.independent_set, (1 + eps) * (graph.max_degree + 1)
        )
        assert cert.holds

    def test_phase_override(self, graph):
        res = boost(graph, make_inner(), eps=0.5, c=8.0, phases=2, seed=3)
        assert res.metadata["phases_requested"] == 2
        assert res.metadata["phases_executed"] <= 2

    def test_early_exit_when_weight_exhausted(self, graph):
        res = boost(graph, make_inner(), eps=0.01, c=8.0, seed=3)
        # t* = 800 phases requested, but residual weight empties long before.
        assert res.metadata["phases_executed"] < res.metadata["phases_requested"]
        assert res.metadata["residual_weight_left"] == 0.0

    def test_rounds_accumulate_phases(self, graph):
        res = boost(graph, make_inner(), eps=0.5, c=8.0, seed=3)
        inner_rounds = sum(p["inner_rounds"] for p in res.metadata["phase_log"])
        k = res.metadata["phases_executed"]
        # inner rounds + 1 reduction round per push + 1 round per pop.
        assert res.rounds == inner_rounds + 2 * k

    def test_phase_log_fractions(self, graph):
        res = boost(graph, make_inner(), eps=0.5, c=8.0, seed=3)
        delta = graph.max_degree
        for entry in res.metadata["phase_log"]:
            # Inner guarantee: pushed value >= active_weight / (4(Δ+1)).
            assert entry["pushed_value"] + 1e-9 >= entry["active_weight"] / (
                4.0 * (delta + 1)
            )

    def test_empty_graph(self):
        res = boost(empty(0), make_inner(), eps=0.5, c=8.0)
        assert res.independent_set == frozenset()

    def test_zero_weight_graph(self):
        g = empty(5).with_weights({v: 0.0 for v in range(5)})
        res = boost(g, make_inner(), eps=0.5, c=8.0)
        assert res.metadata["phases_executed"] == 0

    def test_skewed_weights_still_bounded(self):
        g = skewed_heavy_set(gnp(60, 0.12, seed=4), fraction=0.05, seed=5)
        eps = 1.0
        res = boost(g, make_inner(), eps=eps, c=8.0, seed=6)
        cert = certify_fraction_bound(
            g, res.independent_set, (1 + eps) * (g.max_degree + 1)
        )
        assert cert.holds

    def test_reproducible(self, graph):
        a = boost(graph, make_inner(), eps=0.5, c=8.0, seed=9)
        b = boost(graph, make_inner(), eps=0.5, c=8.0, seed=9)
        assert a.independent_set == b.independent_set


class TestAdaptiveBoost:
    def test_adaptive_preserves_remark_bound(self):
        g = uniform_weights(gnp(60, 0.12, seed=20), 1, 30, seed=21)
        eps = 0.5
        res = boost(g, make_inner(), eps=eps, c=8.0, adaptive=True, seed=22)
        cert = certify_fraction_bound(
            g, res.independent_set, (1 + eps) * (g.max_degree + 1)
        )
        assert cert.holds

    def test_adaptive_preserves_opt_guarantee(self):
        from repro.core import exact_max_weight_is

        g = uniform_weights(gnp(35, 0.2, seed=23), 1, 20, seed=24)
        eps = 0.5
        res = boost(g, make_inner(), eps=eps, c=8.0, adaptive=True, seed=25)
        _, opt = exact_max_weight_is(g)
        assert res.weight(g) + 1e-9 >= opt / ((1 + eps) * max(1, g.max_degree))

    def test_adaptive_never_more_phases(self):
        g = skewed_heavy_set(gnp(60, 0.12, seed=26), fraction=0.03,
                             heavy=1e5, seed=27)
        fixed = boost(g, make_inner(), eps=0.25, c=8.0, seed=28)
        adaptive = boost(g, make_inner(), eps=0.25, c=8.0, adaptive=True, seed=28)
        assert adaptive.metadata["phases_executed"] <= fixed.metadata["phases_executed"]

    def test_adaptive_flag_recorded(self):
        g = uniform_weights(gnp(20, 0.2, seed=29), seed=30)
        res = boost(g, make_inner(), eps=1.0, c=8.0, adaptive=True)
        assert res.metadata["adaptive"] is True
