"""Tests for the LOCAL-model gossip-and-solve algorithm."""

import pytest

from repro.core import exact_max_weight_is, local_exact_maxis
from repro.exceptions import BandwidthExceeded, GraphError
from repro.graphs import (
    complete,
    connected_components,
    cycle,
    disjoint_union,
    gnp,
    grid_2d,
    path,
    star,
    uniform_weights,
)
from repro.simulator import BandwidthPolicy


def connected_weighted(n, p, seed):
    g = uniform_weights(gnp(n, p, seed=seed), 1, 10, seed=seed + 1)
    comp = max(connected_components(g), key=len)
    sub, _ = g.induced_subgraph(comp).relabeled()
    return sub


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_solver(self, seed):
        g = connected_weighted(25, 0.18, seed)
        res = local_exact_maxis(g)
        _, opt = exact_max_weight_is(g)
        assert res.weight(g) == pytest.approx(opt)

    def test_weighted_star(self):
        g = star(5).with_weights({0: 100, **{i: 1.0 for i in range(1, 6)}})
        res = local_exact_maxis(g)
        assert res.independent_set == frozenset({0})

    def test_cycle(self):
        res = local_exact_maxis(cycle(9))
        assert res.size == 4

    def test_complete(self):
        res = local_exact_maxis(complete(8))
        assert res.size == 1

    def test_consistency_every_node_agrees(self):
        # All nodes solve the same instance, so the output is a single
        # independent set, not a patchwork.
        from repro.core import assert_independent

        g = connected_weighted(30, 0.15, 9)
        res = local_exact_maxis(g)
        assert_independent(g, res.independent_set)


class TestModelBehaviour:
    def test_rounds_near_eccentricity(self):
        g = path(20)
        res = local_exact_maxis(g)
        # gossip stabilises after ~ecc rounds (+2 detection/weight rounds).
        assert res.rounds <= 20 + 3

    def test_messages_blow_past_congest(self):
        g = connected_weighted(30, 0.15, 4)
        with pytest.raises(BandwidthExceeded):
            local_exact_maxis(g, policy=BandwidthPolicy.congest())

    def test_audit_mode_counts_violations(self):
        g = connected_weighted(25, 0.18, 5)
        res = local_exact_maxis(g, policy=BandwidthPolicy.congest(strict=False))
        assert len(res.metrics.violations) > 0

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            local_exact_maxis(disjoint_union([path(2), path(2)]))

    def test_grid(self):
        g = uniform_weights(grid_2d(4, 5), 1, 5, seed=6)
        res = local_exact_maxis(g)
        _, opt = exact_max_weight_is(g)
        assert res.weight(g) == pytest.approx(opt)
