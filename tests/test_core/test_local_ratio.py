"""Unit tests for the local-ratio machinery (§4.3)."""

import pytest

from repro.core import (
    StackFrame,
    apply_reduction,
    clip_nonnegative,
    is_independent,
    pop_stage,
    stack_value,
)
from repro.graphs import cycle, path, star


class TestApplyReduction:
    def test_members_drop_to_zero(self):
        g = path(3)
        w = {0: 5.0, 1: 3.0, 2: 4.0}
        new_w, frame = apply_reduction(g, w, frozenset({0}))
        assert new_w[0] == 0.0
        assert new_w[1] == -2.0  # 3 - 5
        assert new_w[2] == 4.0

    def test_frame_records_residuals(self):
        g = path(3)
        w = {0: 5.0, 1: 3.0, 2: 4.0}
        _, frame = apply_reduction(g, w, frozenset({0, 2}))
        assert frame.residual_weights == {0: 5.0, 2: 4.0}
        assert frame.value == 9.0

    def test_reduction_uses_pushed_weight_not_own(self):
        g = star(3)
        w = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0}
        new_w, _ = apply_reduction(g, w, frozenset({0}))
        assert new_w == {0: 0.0, 1: -9.0, 2: -9.0, 3: -9.0}

    def test_multiple_pushers_accumulate(self):
        g = path(3)
        w = {0: 2.0, 1: 5.0, 2: 3.0}
        new_w, _ = apply_reduction(g, w, frozenset({0, 2}))
        assert new_w[1] == 0.0  # 5 - 2 - 3

    def test_original_weights_untouched(self):
        g = path(2)
        w = {0: 1.0, 1: 1.0}
        apply_reduction(g, w, frozenset({0}))
        assert w == {0: 1.0, 1: 1.0}


def test_clip_nonnegative():
    assert clip_nonnegative({0: -1.0, 1: 0.0, 2: 2.5}) == {0: 0.0, 1: 0.0, 2: 2.5}


class TestPopStage:
    def test_pop_reverse_priority(self):
        g = path(3)
        early = StackFrame(frozenset({0}), {0: 1.0})
        late = StackFrame(frozenset({1}), {1: 1.0})
        # Later frames pop first: 1 enters, then 0 is blocked.
        assert pop_stage(g, [early, late]) == frozenset({1})

    def test_pop_merges_compatible_frames(self):
        g = path(5)
        f1 = StackFrame(frozenset({0}), {0: 1.0})
        f2 = StackFrame(frozenset({4}), {4: 1.0})
        f3 = StackFrame(frozenset({2}), {2: 1.0})
        assert pop_stage(g, [f1, f2, f3]) == frozenset({0, 2, 4})

    def test_pop_output_always_independent(self):
        g = cycle(6)
        frames = [
            StackFrame(frozenset({0, 2}), {0: 1.0, 2: 1.0}),
            StackFrame(frozenset({1, 4}), {1: 1.0, 4: 1.0}),
            StackFrame(frozenset({3, 5}), {3: 1.0, 5: 1.0}),
        ]
        result = pop_stage(g, frames)
        assert is_independent(g, result)

    def test_pop_empty_stack(self):
        assert pop_stage(path(3), []) == frozenset()


def test_stack_value_sums_frames():
    frames = [
        StackFrame(frozenset({0}), {0: 2.0}),
        StackFrame(frozenset({1, 2}), {1: 3.0, 2: 4.0}),
    ]
    assert stack_value(frames) == 9.0
    assert stack_value([]) == 0.0


class TestStackProperty:
    """Proposition 2 on hand-built frame sequences: w(I) >= Σ w_i(I_i)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_push_sequences(self, seed):
        import numpy as np

        from repro.graphs import gnp, uniform_weights
        from repro.mis import random_order_mis

        rng = np.random.default_rng(seed)
        g = uniform_weights(gnp(40, 0.12, seed=seed), 1, 10, seed=seed + 1)
        weights = g.weights
        frames = []
        for phase in range(4):
            positive = [v for v, w in weights.items() if w > 0]
            if not positive:
                break
            sub = g.induced_subgraph(positive)
            chosen = random_order_mis(sub, seed=int(rng.integers(1 << 30)))
            weights, frame = apply_reduction(g, weights, chosen)
            weights = clip_nonnegative(weights)
            frames.append(frame)
        result = pop_stage(g, frames)
        assert g.total_weight(result) + 1e-9 >= stack_value(frames)
