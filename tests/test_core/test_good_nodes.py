"""Tests for Theorem 8 (good nodes)."""

import pytest

from repro.core import (
    certify_fraction_bound,
    good_node_set,
    good_nodes_approx,
    is_independent,
)
from repro.graphs import (
    complete,
    empty,
    gnp,
    path,
    skewed_heavy_set,
    star,
    uniform_weights,
)


class TestGoodNodeSet:
    def test_unit_weights_everyone_good_on_regular(self):
        # On a cycle with unit weights: sum over N+ is 3, δ = 2, threshold
        # 3/6 = 0.5 <= 1 — every node is good.
        from repro.graphs import cycle

        assert good_node_set(cycle(8)) == frozenset(range(8))

    def test_heavy_node_is_good(self):
        g = star(4).with_weights({0: 100, 1: 1, 2: 1, 3: 1, 4: 1})
        good = good_node_set(g)
        assert 0 in good
        # Leaves: w=1 vs (1+100)/(2*(4+1)) = 10.1 -> bad.
        assert good == frozenset({0})

    def test_isolated_node_always_good(self):
        g = empty(3)
        assert good_node_set(g) == frozenset({0, 1, 2})

    def test_zero_weights_all_good(self):
        g = path(3).with_weights({0: 0, 1: 0, 2: 0})
        assert good_node_set(g) == frozenset({0, 1, 2})

    def test_distributed_matches_centralized(self):
        from repro.simulator import run
        from repro.core import GoodNodesProtocol

        g = uniform_weights(gnp(50, 0.1, seed=1), 1, 20, seed=2)
        res = run(g, GoodNodesProtocol, seed=3)
        distributed = frozenset(v for v, out in res.outputs.items() if out)
        assert distributed == good_node_set(g)
        assert res.metrics.rounds == 1

    def test_good_nodes_carry_half_the_weight(self):
        # The first inequality of Lemma 1: w(bad) <= w(V)/2.
        for seed in range(5):
            g = uniform_weights(gnp(60, 0.1, seed=seed), 1, 50, seed=seed + 9)
            good = good_node_set(g)
            assert g.total_weight(good) >= g.total_weight() / 2 - 1e-9


class TestTheorem8EndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_bound_holds_uniform(self, seed):
        g = uniform_weights(gnp(70, 0.08, seed=seed), 1, 100, seed=seed + 1)
        res = good_nodes_approx(g, seed=seed)
        cert = certify_fraction_bound(g, res.independent_set,
                                      4.0 * (g.max_degree + 1))
        assert cert.holds

    def test_bound_holds_skewed(self):
        g = skewed_heavy_set(gnp(80, 0.1, seed=5), fraction=0.05, seed=6)
        res = good_nodes_approx(g, seed=7)
        cert = certify_fraction_bound(g, res.independent_set,
                                      4.0 * (g.max_degree + 1))
        assert cert.holds

    def test_output_independent(self):
        g = uniform_weights(gnp(60, 0.12, seed=8), seed=9)
        res = good_nodes_approx(g, seed=10)
        assert is_independent(g, res.independent_set)

    def test_round_cost_is_mis_plus_constant(self):
        g = uniform_weights(gnp(60, 0.12, seed=8), seed=9)
        res = good_nodes_approx(g, seed=10)
        # 1 round of degree/weight exchange + 1 flag round + MIS rounds.
        assert res.rounds == res.metadata["mis_rounds"] + 2

    def test_complete_graph_picks_heaviest_ish(self):
        g = complete(10).with_weights({v: float(v + 1) for v in range(10)})
        res = good_nodes_approx(g, seed=11)
        assert len(res.independent_set) == 1
        # The single pick must be a good node, hence weight >= w(V)/(2(Δ+1)).
        v = next(iter(res.independent_set))
        assert g.weight(v) >= g.total_weight() / (2 * 10)

    def test_empty_graph(self):
        res = good_nodes_approx(empty(0))
        assert res.independent_set == frozenset()
        assert res.rounds == 0

    def test_deterministic_blackbox(self):
        g = uniform_weights(gnp(40, 0.15, seed=12), seed=13)
        a = good_nodes_approx(g, mis="deterministic", seed=1)
        b = good_nodes_approx(g, mis="deterministic", seed=2)
        assert a.independent_set == b.independent_set

    def test_metadata(self):
        g = uniform_weights(gnp(30, 0.2, seed=14), seed=15)
        res = good_nodes_approx(g, seed=16)
        assert res.metadata["good_nodes"] >= 1
        assert res.metadata["guarantee_denominator"] == 4.0 * (g.max_degree + 1)
