"""Tests for §5: the ranking algorithm, its sequential views, Theorem 5."""

import pytest

from repro.core import (
    boppana_is,
    is_independent,
    low_degree_maxis,
    seq_boppana,
    seq_boppana0,
    seq_boppana_trajectory,
    theorem11_threshold_degree,
)
from repro.graphs import complete, cycle, empty, gnp, path, random_regular, star


class TestBoppanaDistributed:
    def test_output_independent(self):
        g = gnp(100, 0.08, seed=1)
        res = boppana_is(g, seed=2)
        assert is_independent(g, res.independent_set)

    def test_one_round(self):
        g = gnp(50, 0.1, seed=3)
        res = boppana_is(g, seed=4)
        assert res.rounds == 1

    def test_isolated_nodes_always_join(self):
        res = boppana_is(empty(4), seed=5)
        assert res.independent_set == frozenset(range(4))

    def test_complete_graph_picks_exactly_one(self):
        res = boppana_is(complete(20), seed=6)
        assert len(res.independent_set) == 1

    def test_not_necessarily_maximal(self):
        # Over several seeds on a long path, at least one run is non-maximal
        # (that is exactly why Theorem 5 needs boosting).
        from repro.core import is_maximal_independent_set

        g = path(60)
        maximal = [
            is_maximal_independent_set(g, boppana_is(g, seed=s).independent_set)
            for s in range(10)
        ]
        assert not all(maximal)

    def test_expected_size_near_n_over_delta_plus_1(self):
        # E|I| >= n/(Δ+1); with 30 trials the mean is comfortably above half that.
        g = random_regular(300, 6, seed=7)
        sizes = [boppana_is(g, seed=s).size for s in range(30)]
        assert sum(sizes) / len(sizes) >= 300 / 7 * 0.8

    def test_rank_messages_fit_congest(self):
        g = gnp(60, 0.1, seed=8)
        res = boppana_is(g, c=1, seed=9)  # strict CONGEST by default: no raise
        assert res.metrics.max_message_bits > 0


class TestSequentialViews:
    @pytest.mark.parametrize("fn", [seq_boppana, seq_boppana0])
    def test_output_independent(self, fn):
        g = gnp(60, 0.1, seed=10)
        assert is_independent(g, fn(g, seed=11))

    @pytest.mark.parametrize("fn", [seq_boppana, seq_boppana0])
    def test_reproducible(self, fn):
        g = gnp(40, 0.15, seed=12)
        assert fn(g, seed=13) == fn(g, seed=13)

    def test_seq_views_agree_in_distribution(self):
        # Coarse check: mean sizes of the two sequential views agree within
        # a few percent over many trials (they are exactly equidistributed).
        g = gnp(40, 0.2, seed=14)
        a = sum(len(seq_boppana(g, seed=s)) for s in range(300)) / 300
        b = sum(len(seq_boppana0(g, seed=s)) for s in range(300)) / 300
        assert abs(a - b) < 0.6

    def test_trajectory_consistency(self):
        g = gnp(50, 0.1, seed=15)
        traj = seq_boppana_trajectory(g, seed=16)
        assert len(traj.order) == g.n
        assert sum(traj.increments) == len(traj.independent_set)
        assert traj.sizes()[-1] == len(traj.independent_set)
        assert is_independent(g, traj.independent_set)

    def test_trajectory_probabilities_monotone(self):
        g = gnp(50, 0.1, seed=17)
        traj = seq_boppana_trajectory(g, seed=18)
        probs = traj.join_probabilities
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert probs[0] == 1.0

    def test_trajectory_probability_lower_bound(self):
        # Pr[join at step t] >= 1 - (Δ+1)t/n — the §5 counting argument.
        g = random_regular(120, 5, seed=19)
        traj = seq_boppana_trajectory(g, seed=20)
        for t, p in enumerate(traj.join_probabilities):
            assert p + 1e-9 >= 1.0 - (g.max_degree + 1) * t / g.n


class TestTheorem11Threshold:
    def test_threshold_value(self):
        assert theorem11_threshold_degree(25600, 0.5 ** (1 / 1)) == pytest.approx(
            25600 / (256 * 0.6931471805599453) - 1
        )

    def test_threshold_rejects_bad_p(self):
        with pytest.raises(ValueError):
            theorem11_threshold_degree(100, 0.0)
        with pytest.raises(ValueError):
            theorem11_threshold_degree(100, 1.0)


class TestTheorem5:
    def test_size_bound_low_degree(self):
        eps = 0.5
        g = random_regular(400, 5, seed=21)
        res = low_degree_maxis(g, eps, seed=22)
        assert res.size >= g.n / ((1 + eps) * (g.max_degree + 1))

    def test_output_independent(self):
        g = gnp(200, 0.02, seed=23)
        res = low_degree_maxis(g, 0.5, seed=24)
        assert is_independent(g, res.independent_set)

    def test_weights_ignored(self):
        g = gnp(100, 0.05, seed=25).with_weights(
            {v: float(v) for v in range(100)}
        )
        res = low_degree_maxis(g, 0.5, seed=26)
        assert res.metadata["theorem"] == 5
        assert res.size >= 1

    def test_rounds_scale_with_inverse_eps(self):
        g = random_regular(200, 4, seed=27)
        fine = low_degree_maxis(g, 0.1, seed=28)
        coarse = low_degree_maxis(g, 2.0, seed=28)
        assert fine.metadata["phases_requested"] > coarse.metadata["phases_requested"]

    def test_star_and_edge_cases(self):
        assert low_degree_maxis(empty(0), 0.5).independent_set == frozenset()
        res = low_degree_maxis(star(5), 0.5, seed=29)
        assert is_independent(star(5), res.independent_set)
