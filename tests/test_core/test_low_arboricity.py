"""End-to-end tests for Theorem 3 / Theorem 12 (Algorithm 6)."""

import pytest

from repro.core import (
    certify_ratio,
    exact_max_weight_is,
    is_independent,
    low_arboricity_maxis,
    theorem1_maxis,
)
from repro.graphs import (
    caterpillar,
    empty,
    gnp,
    grid_2d,
    planted_heavy_hub,
    random_tree,
    uniform_weights,
)


class TestApproximationGuarantee:
    def test_certified_on_tree(self):
        eps = 0.5
        g = uniform_weights(random_tree(50, seed=1), 1, 20, seed=2)
        _, opt = exact_max_weight_is(g)
        res = low_arboricity_maxis(g, eps, seed=3)
        # α = 1: factor 8(1+ε) = 12.
        cert = certify_ratio(g, res.independent_set, 8 * (1 + eps), opt=opt)
        assert cert.holds
        assert res.metadata["alpha"] == 1

    def test_certified_on_grid(self):
        eps = 0.5
        g = uniform_weights(grid_2d(6, 8), 1, 10, seed=4)
        _, opt = exact_max_weight_is(g)
        res = low_arboricity_maxis(g, eps, seed=5)
        cert = certify_ratio(
            g, res.independent_set, 8 * (1 + eps) * res.metadata["alpha"], opt=opt
        )
        assert cert.holds

    def test_output_independent(self):
        g = uniform_weights(planted_heavy_hub(120, 40, 2.0 / 120, seed=6), seed=7)
        res = low_arboricity_maxis(g, 0.5, seed=8)
        assert is_independent(g, res.independent_set)

    def test_beats_delta_guarantee_on_caterpillar(self):
        # Caterpillar: α = 1 but Δ = legs + 2; the arboricity guarantee
        # 8(1+ε) is independent of Δ.
        g = uniform_weights(caterpillar(25, 20), 1, 10, seed=9)
        eps = 0.5
        assert 8 * (1 + eps) * 1 < (1 + eps) * g.max_degree
        res = low_arboricity_maxis(g, eps, seed=10)
        _, opt = exact_max_weight_is(g, limit_nodes=600)
        assert res.weight(g) + 1e-9 >= opt / (8 * (1 + eps))


class TestAlgorithmMechanics:
    def test_graph_empties_within_log_n_phases(self):
        g = uniform_weights(gnp(100, 4.0 / 100, seed=11), 1, 5, seed=12)
        res = low_arboricity_maxis(g, 0.5, seed=13)
        assert res.metadata["residual_weight_left"] == 0.0
        assert res.metadata["phases_executed"] <= res.metadata["phases_requested"]

    def test_alpha_computed_when_omitted(self):
        g = uniform_weights(random_tree(30, seed=14), seed=15)
        res = low_arboricity_maxis(g, 0.5, seed=16)
        assert res.metadata["alpha"] == 1

    def test_alpha_override_respected(self):
        g = uniform_weights(random_tree(30, seed=14), seed=15)
        res = low_arboricity_maxis(g, 0.5, alpha=3, seed=16)
        assert res.metadata["threshold"] == 12

    def test_threshold_factor_ablation(self):
        g = uniform_weights(caterpillar(15, 5), 1, 10, seed=17)
        res = low_arboricity_maxis(g, 0.5, threshold_factor=8, seed=18)
        assert res.metadata["threshold"] == 8 * res.metadata["alpha"]
        assert is_independent(g, res.independent_set)

    def test_stack_property(self):
        g = uniform_weights(grid_2d(7, 7), 1, 9, seed=19)
        res = low_arboricity_maxis(g, 0.5, seed=20)
        assert res.weight(g) + 1e-9 >= res.metadata["stack_value"]

    def test_custom_inner_algorithm(self):
        def inner(graph, eps, *, seed=None, n_bound=None):
            return theorem1_maxis(graph, eps, seed=seed, n_bound=n_bound)

        g = uniform_weights(random_tree(40, seed=21), 1, 8, seed=22)
        res = low_arboricity_maxis(g, 0.5, inner=inner, seed=23)
        assert is_independent(g, res.independent_set)
        assert res.weight(g) > 0

    def test_empty_graph(self):
        assert low_arboricity_maxis(empty(0), 0.5).independent_set == frozenset()

    def test_phase_log_shrinks(self):
        g = uniform_weights(gnp(120, 5.0 / 120, seed=24), 1, 5, seed=25)
        res = low_arboricity_maxis(g, 0.5, seed=26)
        counts = [p["active_nodes"] for p in res.metadata["phase_log"]]
        assert all(b < a for a, b in zip(counts, counts[1:]))
