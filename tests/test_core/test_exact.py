"""Unit tests for the exact MaxWIS branch-and-bound solver."""

import pytest

from repro.core import exact_max_is_size, exact_max_weight_is, is_independent
from repro.exceptions import SolverLimitError
from repro.graphs import (
    complete,
    cycle,
    disjoint_union,
    empty,
    gnp,
    path,
    star,
    uniform_weights,
)


class TestKnownOptima:
    def test_path_unweighted(self):
        s, w = exact_max_weight_is(path(5))
        assert w == 3
        assert s == frozenset({0, 2, 4})

    def test_cycle_unweighted(self):
        _, w = exact_max_weight_is(cycle(7))
        assert w == 3  # floor(7/2)

    def test_complete(self):
        g = complete(8).with_weights({v: float(v + 1) for v in range(8)})
        s, w = exact_max_weight_is(g)
        assert s == frozenset({7})
        assert w == 8

    def test_star_weighted_hub(self):
        g = star(4).with_weights({0: 100, 1: 1, 2: 1, 3: 1, 4: 1})
        s, w = exact_max_weight_is(g)
        assert s == frozenset({0})
        assert w == 100

    def test_star_weighted_leaves(self):
        g = star(4).with_weights({0: 3, 1: 1, 2: 1, 3: 1, 4: 1})
        _, w = exact_max_weight_is(g)
        assert w == 4

    def test_empty_graph(self):
        s, w = exact_max_weight_is(empty(0))
        assert s == frozenset() and w == 0

    def test_edgeless_takes_all(self):
        s, w = exact_max_weight_is(empty(5))
        assert len(s) == 5 and w == 5

    def test_zero_weights(self):
        g = path(3).with_weights({0: 0, 1: 0, 2: 0})
        _, w = exact_max_weight_is(g)
        assert w == 0

    def test_weighted_path_prefers_middle(self):
        g = path(3).with_weights({0: 1, 1: 5, 2: 1})
        s, w = exact_max_weight_is(g)
        assert s == frozenset({1})
        assert w == 5

    def test_components_solved_independently(self):
        g = disjoint_union([cycle(5), path(4)])
        _, w = exact_max_weight_is(g)
        assert w == 2 + 2


class TestSolverBehaviour:
    def test_limit_enforced(self):
        with pytest.raises(SolverLimitError):
            exact_max_weight_is(empty(500))

    def test_limit_override(self):
        _, w = exact_max_weight_is(empty(500), limit_nodes=600)
        assert w == 500

    def test_output_is_independent(self):
        g = uniform_weights(gnp(28, 0.25, seed=3), 1, 9, seed=4)
        s, w = exact_max_weight_is(g)
        assert is_independent(g, s)
        assert abs(g.total_weight(s) - w) < 1e-9

    def test_dominates_any_greedy(self):
        from repro.core import greedy_maxis

        for seed in range(5):
            g = uniform_weights(gnp(24, 0.3, seed=seed), 1, 10, seed=seed + 50)
            _, opt = exact_max_weight_is(g)
            assert opt + 1e-9 >= g.total_weight(greedy_maxis(g))

    def test_exact_max_is_size(self):
        assert exact_max_is_size(cycle(8)) == 4
        assert exact_max_is_size(complete(5)) == 1


class TestMaxWeightClique:
    def test_clique_in_complete_graph_is_everything(self):
        from repro.core import exact_max_weight_clique

        g = complete(6).with_weights({v: 2.0 for v in range(6)})
        s, w = exact_max_weight_clique(g)
        assert s == frozenset(range(6))
        assert w == 12.0

    def test_triangle_plus_pendant(self):
        from repro.core import exact_max_weight_clique
        from repro.graphs import WeightedGraph

        g = WeightedGraph.from_edges(range(4), [(0, 1), (1, 2), (0, 2), (2, 3)])
        s, w = exact_max_weight_clique(g)
        assert s == frozenset({0, 1, 2})

    def test_edgeless_picks_heaviest_node(self):
        from repro.core import exact_max_weight_clique

        g = empty(4).with_weights({0: 1, 1: 5, 2: 2, 3: 3})
        s, w = exact_max_weight_clique(g)
        assert s == frozenset({1}) and w == 5
