"""Tests for the §2.2 sequential local-ratio algorithm and Theorem 6."""

import pytest

from repro.core import (
    exact_max_weight_is,
    is_independent,
    sequential_local_ratio_maxis,
    theorem6_holds,
)
from repro.graphs import complete, cycle, empty, gnp, path, star, uniform_weights


class TestSequentialLocalRatio:
    def test_output_independent(self):
        g = uniform_weights(gnp(40, 0.15, seed=1), 1, 10, seed=2)
        assert is_independent(g, sequential_local_ratio_maxis(g))

    @pytest.mark.parametrize("seed", range(6))
    def test_delta_approximation_worst_case(self, seed):
        """§2.2: the pick order is *arbitrary* and Δ-approximation must
        still hold — try several adversarial-ish orders per instance."""
        g = uniform_weights(gnp(28, 0.2, seed=seed), 1, 10, seed=seed + 30)
        _, opt = exact_max_weight_is(g)
        delta = max(1, g.max_degree)
        for order in (None, list(reversed(g.nodes)),
                      sorted(g.nodes, key=g.weight),
                      sorted(g.nodes, key=g.weight, reverse=True)):
            chosen = sequential_local_ratio_maxis(g, order=order)
            assert g.total_weight(chosen) * delta + 1e-9 >= opt

    def test_star_with_heavy_hub(self):
        g = star(5).with_weights({0: 100, **{i: 1.0 for i in range(1, 6)}})
        # Scanning hub first: push hub (reduces leaves to negative), pop hub.
        assert sequential_local_ratio_maxis(g, order=[0, 1, 2, 3, 4, 5]) == frozenset({0})

    def test_star_leaves_first(self):
        g = star(5).with_weights({0: 100, **{i: 1.0 for i in range(1, 6)}})
        # Leaves pushed first (5 weight), hub residual 95 pushed later:
        # pop yields the hub (later frames pop first).
        chosen = sequential_local_ratio_maxis(g, order=[1, 2, 3, 4, 5, 0])
        assert chosen == frozenset({0})
        # Δ-approx check: w=100 vs OPT=100.
        assert g.total_weight(chosen) == 100

    def test_skips_zero_weight(self):
        g = path(3).with_weights({0: 0, 1: 1, 2: 0})
        assert sequential_local_ratio_maxis(g) == frozenset({1})

    def test_empty_graphs(self):
        assert sequential_local_ratio_maxis(empty(0)) == frozenset()
        assert sequential_local_ratio_maxis(empty(4)) == frozenset(range(4))

    def test_complete_graph_picks_one(self):
        g = complete(8).with_weights({v: float(v + 1) for v in range(8)})
        chosen = sequential_local_ratio_maxis(g)
        assert len(chosen) == 1


class TestTheorem6:
    def test_holds_on_simple_split(self):
        g = path(4).with_weights({0: 2, 1: 2, 2: 2, 3: 2})
        w1 = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
        w2 = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
        assert theorem6_holds(g, w1, w2, frozenset({0, 2}))

    @pytest.mark.parametrize("seed", range(5))
    def test_holds_on_random_splits(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        g = uniform_weights(gnp(16, 0.3, seed=seed), 1, 10, seed=seed + 40)
        split = {v: float(rng.uniform(0, 1)) for v in g.nodes}
        w1 = {v: g.weight(v) * split[v] for v in g.nodes}
        w2 = {v: g.weight(v) * (1 - split[v]) for v in g.nodes}
        # Any independent set; take a greedy one.
        from repro.mis import random_order_mis

        chosen = random_order_mis(g, seed=seed)
        assert theorem6_holds(g, w1, w2, chosen)

    def test_zero_weight_side_is_vacuous(self):
        g = cycle(5)
        w1 = {v: 1.0 for v in g.nodes}
        w2 = {v: 0.0 for v in g.nodes}
        assert theorem6_holds(g, w1, w2, frozenset({0, 2}))
