"""End-to-end tests for Theorem 2: the fast randomized (1+ε)Δ pipeline."""

import pytest

from repro.core import certify_ratio, exact_max_weight_is, is_independent, theorem2_maxis
from repro.graphs import empty, gnp, integer_weights, uniform_weights


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(3))
    def test_certified_against_opt(self, seed):
        eps = 0.5
        g = uniform_weights(gnp(45, 0.15, seed=seed), 1, 30, seed=seed + 5)
        _, opt = exact_max_weight_is(g)
        res = theorem2_maxis(g, eps, seed=seed)
        cert = certify_ratio(
            g, res.independent_set, (1 + eps) * max(1, g.max_degree), opt=opt
        )
        assert cert.holds

    def test_remark_fraction_bound(self):
        eps = 0.5
        g = uniform_weights(gnp(120, 0.08, seed=3), 1, 100, seed=4)
        res = theorem2_maxis(g, eps, seed=5)
        assert res.weight(g) + 1e-9 >= g.total_weight() / (
            (1 + eps) * (g.max_degree + 1)
        )

    def test_output_independent(self):
        g = uniform_weights(gnp(100, 0.1, seed=6), seed=7)
        res = theorem2_maxis(g, 0.5, seed=8)
        assert is_independent(g, res.independent_set)


class TestRoundBehaviour:
    def test_rounds_independent_of_weight_scale(self):
        # The core speed-up claim: no log W factor.
        g_small = integer_weights(gnp(100, 0.1, seed=9), 10, seed=10)
        g_large = g_small.with_weights(
            {v: g_small.weight(v) * 10 ** 6 for v in g_small.nodes}
        )
        a = theorem2_maxis(g_small, 0.5, seed=11)
        b = theorem2_maxis(g_large, 0.5, seed=11)
        # Identical topology and seed: the weight scale must not matter.
        assert b.rounds <= 1.5 * a.rounds + 10

    def test_mis_runs_on_log_degree_subgraph(self):
        g = uniform_weights(gnp(150, 0.25, seed=12), 1, 50, seed=13)
        res = theorem2_maxis(g, 1.0, seed=14)
        # Every phase's sampled subgraph had O(log n) max degree, so the
        # total rounds stay far below one MIS on the full 37-ish-degree graph
        # times log W; sanity-check a generous ceiling.
        assert res.rounds < 400

    def test_reproducible(self):
        g = uniform_weights(gnp(80, 0.1, seed=15), seed=16)
        a = theorem2_maxis(g, 0.5, seed=17)
        b = theorem2_maxis(g, 0.5, seed=17)
        assert a.independent_set == b.independent_set
        assert a.rounds == b.rounds


class TestEdgeCases:
    def test_empty_graph(self):
        assert theorem2_maxis(empty(0), 0.5).independent_set == frozenset()

    def test_edgeless(self):
        res = theorem2_maxis(empty(5), 0.5, seed=1)
        assert res.independent_set == frozenset(range(5))

    def test_metadata(self):
        g = uniform_weights(gnp(40, 0.15, seed=18), seed=19)
        res = theorem2_maxis(g, 0.5, seed=20)
        assert res.metadata["theorem"] == 2
        assert res.metadata["c"] == pytest.approx(8.0)

    def test_luby_blackbox_also_works(self):
        g = uniform_weights(gnp(60, 0.12, seed=21), seed=22)
        res = theorem2_maxis(g, 0.5, mis="luby", seed=23)
        assert is_independent(g, res.independent_set)
