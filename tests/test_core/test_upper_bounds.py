"""Tests for the certified OPT upper bounds."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import exact_max_weight_is
from repro.core.upper_bounds import (
    clique_cover_upper_bound,
    greedy_clique_cover,
    opt_upper_bound,
)
from repro.graphs import WeightedGraph, complete, cycle, empty, gnp, path, uniform_weights


class TestCliqueCover:
    def test_cover_is_partition_of_cliques(self):
        g = gnp(40, 0.3, seed=1)
        cover = greedy_clique_cover(g)
        seen = set()
        for clique in cover:
            assert not (clique & seen)
            seen |= clique
            for u in clique:
                for v in clique:
                    if u < v:
                        assert g.has_edge(u, v)
        assert seen == set(g.nodes)

    def test_complete_graph_single_clique(self):
        assert len(greedy_clique_cover(complete(7))) == 1

    def test_edgeless_all_singletons(self):
        assert len(greedy_clique_cover(empty(5))) == 5

    def test_path_cover_size(self):
        # P4 covers with 2 edges.
        assert len(greedy_clique_cover(path(4))) == 2


class TestUpperBound:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("p", [0.2, 0.5])
    def test_dominates_exact_opt(self, seed, p):
        g = uniform_weights(gnp(30, p, seed=seed), 1, 10, seed=seed + 60)
        _, opt = exact_max_weight_is(g)
        assert clique_cover_upper_bound(g) + 1e-9 >= opt
        assert opt_upper_bound(g) + 1e-9 >= opt

    def test_never_exceeds_total_weight(self):
        g = uniform_weights(gnp(50, 0.1, seed=2), 1, 10, seed=3)
        assert opt_upper_bound(g) <= g.total_weight() + 1e-9

    def test_tight_on_complete_graph(self):
        g = complete(10).with_weights({v: float(v + 1) for v in range(10)})
        assert clique_cover_upper_bound(g) == 10.0  # exactly OPT

    def test_beats_trivial_on_dense(self):
        g = uniform_weights(gnp(40, 0.5, seed=4), 1, 10, seed=5)
        assert clique_cover_upper_bound(g) < g.total_weight()

    def test_empty_graph(self):
        assert opt_upper_bound(empty(0)) == 0.0

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_dominance_hypothesis(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 18))
        g = gnp(n, 0.4, seed=seed)
        g = g.with_weights({v: float(rng.integers(0, 20)) for v in g.nodes})
        _, opt = exact_max_weight_is(g)
        assert opt_upper_bound(g) + 1e-9 >= opt
