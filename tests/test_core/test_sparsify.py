"""Tests for Theorem 9 (weighted sparsification)."""

import math

import pytest

from repro.core import (
    is_independent,
    sample_subgraph,
    sampling_probabilities,
    sparsified_approx,
)
from repro.graphs import (
    complete,
    empty,
    gnp,
    random_regular,
    skewed_heavy_set,
    star,
    uniform_weights,
)


class TestSamplingProbabilities:
    def test_isolated_nodes_probability_one(self):
        probs = sampling_probabilities(empty(4))
        assert probs == {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}

    def test_probabilities_in_unit_interval(self):
        g = uniform_weights(gnp(60, 0.2, seed=1), 1, 100, seed=2)
        probs = sampling_probabilities(g)
        assert all(0 < p <= 1 for p in probs.values())

    def test_low_degree_graphs_sample_everything(self):
        # λ log n / δ >= 1 when δ <= λ log n.
        from repro.graphs import cycle

        probs = sampling_probabilities(cycle(64))
        assert all(p == 1.0 for p in probs.values())

    def test_heavy_node_boosted(self):
        g = skewed_heavy_set(random_regular(200, 50, seed=3), fraction=0.01,
                             heavy=1e9, seed=4)
        probs = sampling_probabilities(g)
        heavy_nodes = [v for v in g.nodes if g.weight(v) > 1]
        # A node carrying essentially all neighbourhood weight gets p = 1
        # (w(v)/wmax(v) is Θ(1), times λ log n >> 1).
        assert all(probs[v] == 1.0 for v in heavy_nodes)

    def test_uniform_only_ignores_weights(self):
        g = skewed_heavy_set(random_regular(200, 50, seed=3), fraction=0.01,
                             heavy=1e9, seed=4)
        probs = sampling_probabilities(g, uniform_only=True)
        values = set(round(p, 12) for p in probs.values())
        assert len(values) == 1  # regular graph: identical p everywhere

    def test_distributed_matches_centralized(self):
        g = uniform_weights(gnp(50, 0.3, seed=5), 1, 10, seed=6)
        outcome = sample_subgraph(g, seed=7)
        expected = sampling_probabilities(g)
        assert outcome.probabilities == pytest.approx(expected)

    def test_zero_weights_fall_back_to_degree_term(self):
        g = star(5).with_weights({v: 0.0 for v in range(6)})
        probs = sampling_probabilities(g)
        assert all(0 < p <= 1 for p in probs.values())


class TestSampledSubgraph:
    def test_lemma3_max_degree_logarithmic(self):
        # Δ = 60 >> log n; the sample's degree collapses to O(log n).
        g = random_regular(400, 60, seed=8)
        outcome = sample_subgraph(g, seed=9)
        assert outcome.subgraph.max_degree <= 10 * math.log(400)

    def test_lemma5_weight_preserved(self):
        g = skewed_heavy_set(random_regular(300, 40, seed=10), fraction=0.02,
                             heavy=1e6, seed=11)
        outcome = sample_subgraph(g, seed=12)
        target = min(
            g.total_weight(),
            g.total_weight() * math.log(300) / g.max_degree,
        )
        assert outcome.subgraph.total_weight() >= target / 8.0

    def test_sampling_reproducible(self):
        g = uniform_weights(gnp(80, 0.2, seed=13), seed=14)
        a = sample_subgraph(g, seed=15)
        b = sample_subgraph(g, seed=15)
        assert a.subgraph == b.subgraph

    def test_rounds_are_constant(self):
        g = uniform_weights(gnp(80, 0.2, seed=13), seed=14)
        outcome = sample_subgraph(g, seed=15)
        assert outcome.metrics.rounds == 2


class TestTheorem9EndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_weight_fraction_bound(self, seed):
        g = uniform_weights(gnp(150, 0.15, seed=seed), 1, 50, seed=seed + 20)
        res = sparsified_approx(g, seed=seed)
        # Theorem 9: w(I) >= w(V)/(cΔ); check the conservative c = 8.
        assert res.weight(g) >= g.total_weight() / (8 * max(1, g.max_degree))

    def test_output_independent(self):
        g = uniform_weights(gnp(100, 0.2, seed=30), seed=31)
        res = sparsified_approx(g, seed=32)
        assert is_independent(g, res.independent_set)

    def test_metadata_records_sampling(self):
        g = uniform_weights(gnp(100, 0.2, seed=30), seed=31)
        res = sparsified_approx(g, seed=32)
        md = res.metadata
        assert md["sampled_nodes"] <= g.n
        assert md["sampled_weight"] <= g.total_weight() + 1e-9
        assert md["lambda"] > 0

    def test_empty_graph(self):
        res = sparsified_approx(empty(0))
        assert res.independent_set == frozenset()

    def test_complete_graph(self):
        g = complete(30).with_weights({v: float(v + 1) for v in range(30)})
        res = sparsified_approx(g, seed=33)
        assert len(res.independent_set) == 1
