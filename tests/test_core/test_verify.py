"""Unit tests for output certification."""

import pytest

from repro.core import (
    assert_independent,
    assert_maximal_independent_set,
    certify_fraction_bound,
    certify_ratio,
    is_independent,
    is_maximal_independent_set,
)
from repro.exceptions import VerificationError
from repro.graphs import cycle, empty, path, star


class TestIndependence:
    def test_is_independent_true(self):
        assert is_independent(path(4), {0, 2})
        assert is_independent(path(4), set())

    def test_is_independent_false(self):
        assert not is_independent(path(4), {0, 1})

    def test_unknown_node(self):
        assert not is_independent(path(3), {7})

    def test_assert_passes(self):
        assert_independent(cycle(6), {0, 2, 4})

    def test_assert_raises_with_edge(self):
        with pytest.raises(VerificationError, match="edge"):
            assert_independent(cycle(6), {0, 1})

    def test_assert_raises_unknown_node(self):
        with pytest.raises(VerificationError, match="not in graph"):
            assert_independent(cycle(6), {42})


class TestMaximality:
    def test_maximal_true(self):
        assert is_maximal_independent_set(path(4), {0, 2})
        assert is_maximal_independent_set(star(4), {0})

    def test_independent_but_not_maximal(self):
        assert not is_maximal_independent_set(path(5), {0})
        with pytest.raises(VerificationError, match="not maximal"):
            assert_maximal_independent_set(path(5), {0})

    def test_not_independent_not_maximal(self):
        assert not is_maximal_independent_set(path(3), {0, 1})

    def test_empty_graph(self):
        assert is_maximal_independent_set(empty(0), set())
        assert_maximal_independent_set(empty(3), {0, 1, 2})


class TestCertificates:
    def test_fraction_bound_holds(self):
        g = path(3).with_weights({0: 5, 1: 1, 2: 5})
        cert = certify_fraction_bound(g, frozenset({0, 2}), denominator=2.0)
        assert cert.holds
        assert cert.achieved == 10
        assert cert.required == 5.5
        assert bool(cert)

    def test_fraction_bound_fails(self):
        g = path(3).with_weights({0: 5, 1: 1, 2: 5})
        cert = certify_fraction_bound(g, frozenset({1}), denominator=2.0)
        assert not cert.holds

    def test_fraction_bound_checks_independence(self):
        with pytest.raises(VerificationError):
            certify_fraction_bound(path(3), frozenset({0, 1}), 2.0)

    def test_ratio_with_explicit_opt(self):
        g = path(3)
        cert = certify_ratio(g, frozenset({0, 2}), factor=1.0, opt=2.0)
        assert cert.holds
        assert "OPT" in cert.reference

    def test_ratio_computes_opt_when_missing(self):
        g = path(4).with_weights({0: 1, 1: 10, 2: 1, 3: 10})
        cert = certify_ratio(g, frozenset({1, 3}), factor=1.0)
        assert cert.holds  # {1,3} IS the optimum here

    def test_ratio_fails_for_bad_set(self):
        g = path(4).with_weights({0: 1, 1: 10, 2: 1, 3: 10})
        cert = certify_ratio(g, frozenset({0}), factor=1.5)
        assert not cert.holds


class TestCertifyResult:
    def test_dispatch_small_instance_uses_opt(self):
        from repro.core import certify_result, theorem1_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(30, 0.15, seed=50), 1, 10, seed=51)
        res = theorem1_maxis(g, 0.5, seed=52)
        cert = certify_result(g, res)
        assert cert.holds
        assert "OPT" in cert.reference

    def test_dispatch_large_instance_uses_fraction(self):
        from repro.core import certify_result, theorem2_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(200, 0.05, seed=53), 1, 10, seed=54)
        res = theorem2_maxis(g, 0.5, seed=55)
        cert = certify_result(g, res)
        assert cert.holds
        assert "w(V)" in cert.reference

    def test_explicit_opt_passthrough(self):
        from repro.core import certify_result, exact_max_weight_is, theorem1_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(25, 0.2, seed=56), 1, 10, seed=57)
        _, opt = exact_max_weight_is(g)
        res = theorem1_maxis(g, 1.0, seed=58)
        assert certify_result(g, res, opt=opt).holds

    def test_missing_metadata_raises(self):
        from repro.core import certify_result
        from repro.exceptions import VerificationError
        from repro.graphs import path
        from repro.results import AlgorithmResult
        from repro.simulator.metrics import RunMetrics

        bare = AlgorithmResult(frozenset({0}), RunMetrics(), {})
        with pytest.raises(VerificationError):
            certify_result(path(2), bare)

    def test_theorem3_large_requires_opt(self):
        from repro.core import certify_result, low_arboricity_maxis
        from repro.exceptions import VerificationError
        from repro.graphs import random_tree, uniform_weights

        g = uniform_weights(random_tree(200, seed=59), 1, 10, seed=60)
        res = low_arboricity_maxis(g, 0.5, alpha=1, seed=61)
        with pytest.raises(VerificationError, match="pass opt"):
            certify_result(g, res)
        # With an upper bound on OPT (w(V)) the conservative check runs.
        cert = certify_result(g, res, opt=g.total_weight(res.independent_set))
        assert cert.holds
