"""End-to-end tests for Theorem 1: deterministic (1+ε)Δ-approximation."""

import pytest

from repro.core import certify_ratio, exact_max_weight_is, is_independent, theorem1_maxis
from repro.graphs import empty, gnp, path, star, uniform_weights


class TestApproximationGuarantee:
    @pytest.mark.parametrize("eps", [1.0, 0.5, 0.25])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_certified_against_opt(self, eps, seed):
        g = uniform_weights(gnp(45, 0.12, seed=seed), 1, 25, seed=seed + 7)
        _, opt = exact_max_weight_is(g)
        res = theorem1_maxis(g, eps, seed=seed)
        cert = certify_ratio(
            g, res.independent_set, (1 + eps) * max(1, g.max_degree), opt=opt
        )
        assert cert.holds

    def test_remark_fraction_bound(self):
        g = uniform_weights(gnp(60, 0.1, seed=3), 1, 40, seed=4)
        eps = 0.5
        res = theorem1_maxis(g, eps, seed=5)
        assert res.weight(g) + 1e-9 >= g.total_weight() / (
            (1 + eps) * (g.max_degree + 1)
        )

    def test_output_independent(self):
        g = uniform_weights(gnp(60, 0.1, seed=3), seed=4)
        res = theorem1_maxis(g, 0.5, seed=5)
        assert is_independent(g, res.independent_set)


class TestDeterminism:
    def test_fully_deterministic_with_det_blackbox(self):
        g = uniform_weights(gnp(50, 0.12, seed=6), 1, 10, seed=7)
        a = theorem1_maxis(g, 0.5, seed=1)
        b = theorem1_maxis(g, 0.5, seed=99)
        assert a.independent_set == b.independent_set
        assert a.rounds == b.rounds

    def test_randomized_blackbox_varies(self):
        g = uniform_weights(gnp(50, 0.12, seed=6), 1, 10, seed=7)
        sets = {
            theorem1_maxis(g, 0.5, mis="luby", seed=s).independent_set
            for s in range(5)
        }
        assert len(sets) >= 1  # may coincide, but must all be valid
        for s in sets:
            assert is_independent(g, s)


class TestEdgeCases:
    def test_empty_graph(self):
        res = theorem1_maxis(empty(0), 0.5)
        assert res.independent_set == frozenset()

    def test_single_node(self):
        res = theorem1_maxis(path(1), 0.5)
        assert res.independent_set == frozenset({0})

    def test_edgeless(self):
        res = theorem1_maxis(empty(6), 0.5)
        assert res.independent_set == frozenset(range(6))

    def test_star_heavy_hub(self):
        g = star(6).with_weights({0: 1000, **{i: 1.0 for i in range(1, 7)}})
        res = theorem1_maxis(g, 0.25, seed=1)
        assert 0 in res.independent_set

    def test_metadata(self):
        g = uniform_weights(gnp(30, 0.15, seed=8), seed=9)
        res = theorem1_maxis(g, 0.5, seed=10)
        assert res.metadata["theorem"] == 1
        assert res.metadata["delta"] == g.max_degree
        assert res.metadata["guarantee_factor"] == pytest.approx(
            1.5 * g.max_degree
        )
