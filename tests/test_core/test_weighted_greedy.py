"""Tests for the distributed heaviest-first greedy."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    exact_max_weight_is,
    greedy_chain_graph,
    greedy_maxis,
    is_independent,
    is_maximal_independent_set,
    weighted_greedy_maxis,
)
from repro.graphs import WeightedGraph, empty, gnp, star, uniform_weights


class TestEquivalenceWithSequential:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_sequential_greedy(self, seed):
        g = uniform_weights(gnp(50, 0.12, seed=seed), 1, 40, seed=seed + 7)
        res = weighted_greedy_maxis(g)
        assert res.independent_set == greedy_maxis(g)

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_matches_sequential_hypothesis(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        g = gnp(n, 0.3, seed=seed)
        g = g.with_weights({v: float(rng.integers(1, 15)) for v in g.nodes})
        assert weighted_greedy_maxis(g).independent_set == greedy_maxis(g)

    def test_seed_independent(self):
        g = uniform_weights(gnp(40, 0.15, seed=1), 1, 10, seed=2)
        a = weighted_greedy_maxis(g, seed=1)
        b = weighted_greedy_maxis(g, seed=999)
        assert a.independent_set == b.independent_set


class TestGuarantees:
    def test_output_maximal(self):
        g = uniform_weights(gnp(60, 0.1, seed=3), 1, 20, seed=4)
        res = weighted_greedy_maxis(g)
        assert is_maximal_independent_set(g, res.independent_set)

    @pytest.mark.parametrize("seed", range(4))
    def test_delta_approximation(self, seed):
        g = uniform_weights(gnp(30, 0.2, seed=seed), 1, 10, seed=seed + 9)
        _, opt = exact_max_weight_is(g)
        res = weighted_greedy_maxis(g)
        assert res.weight(g) * max(1, g.max_degree) + 1e-9 >= opt

    def test_heavy_hub_star(self):
        g = star(6).with_weights({0: 100, **{i: 1.0 for i in range(1, 7)}})
        assert weighted_greedy_maxis(g).independent_set == frozenset({0})


class TestRoundComplexity:
    def test_adversarial_chain_is_sequential(self):
        chain = greedy_chain_graph(80)
        res = weighted_greedy_maxis(chain)
        assert res.rounds >= 80  # Θ(n): one decision per phase down the chain

    def test_random_instances_fast(self):
        g = uniform_weights(gnp(200, 0.05, seed=5), 1, 100, seed=6)
        res = weighted_greedy_maxis(g)
        assert res.rounds <= 40  # longest decreasing chain is short w.h.p.

    def test_chain_graph_shape(self):
        chain = greedy_chain_graph(10)
        assert chain.m == 9
        weights = [chain.weight(v) for v in chain.nodes]
        assert weights == sorted(weights, reverse=True)


class TestEdgeCases:
    def test_empty(self):
        assert weighted_greedy_maxis(empty(0)).independent_set == frozenset()

    def test_edgeless(self):
        res = weighted_greedy_maxis(empty(5))
        assert res.independent_set == frozenset(range(5))
        assert res.rounds <= 1

    def test_equal_weights_tiebreak_by_id(self):
        g = WeightedGraph.from_edges([0, 1, 2], [(0, 1), (1, 2)],
                                     {0: 5.0, 1: 5.0, 2: 5.0})
        # Ties go to the smaller id: 0 joins, then 2.
        assert weighted_greedy_maxis(g).independent_set == frozenset({0, 2})
