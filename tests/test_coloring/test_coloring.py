"""Tests for the (Δ+1)-colouring package and the §8 pipeline."""

import pytest

from repro.coloring import (
    best_color_class,
    distributed_color_class_maxis,
    greedy_coloring,
    random_coloring,
    verify_coloring,
)
from repro.core.verify import is_independent
from repro.exceptions import VerificationError
from repro.graphs import (
    complete,
    cycle,
    empty,
    gnp,
    grid_2d,
    path,
    star,
    uniform_weights,
)


class TestGreedyColoring:
    def test_proper_and_bounded(self):
        g = gnp(60, 0.15, seed=1)
        colors = greedy_coloring(g)
        verify_coloring(g, colors, max_colors=g.max_degree + 1)

    def test_bipartite_two_colors(self):
        colors = greedy_coloring(path(10))
        assert len(set(colors.values())) == 2

    def test_complete_needs_n(self):
        colors = greedy_coloring(complete(6))
        assert len(set(colors.values())) == 6

    def test_custom_order(self):
        g = star(4)
        colors = greedy_coloring(g, order=[1, 2, 3, 4, 0])
        assert colors[0] == 1  # hub coloured last, leaves all 0


class TestVerifyColoring:
    def test_rejects_monochromatic_edge(self):
        with pytest.raises(VerificationError, match="monochromatic"):
            verify_coloring(path(2), {0: 1, 1: 1})

    def test_rejects_missing_node(self):
        with pytest.raises(VerificationError, match="without colour"):
            verify_coloring(path(2), {0: 1})

    def test_rejects_too_many_colors(self):
        with pytest.raises(VerificationError, match="allowed"):
            verify_coloring(empty(3), {0: 0, 1: 1, 2: 2}, max_colors=2)


class TestRandomColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_proper_delta_plus_one(self, seed):
        g = gnp(80, 0.1, seed=seed)
        res = random_coloring(g, seed=seed + 10)
        verify_coloring(g, res.colors, max_colors=g.max_degree + 1)

    def test_palette_is_per_node_degree(self):
        g = star(12)
        res = random_coloring(g, seed=1)
        # Leaves have degree 1: colours in {0, 1}; hub in {0..12}.
        for leaf in range(1, 13):
            assert res.colors[leaf] in (0, 1)

    def test_rounds_logarithmic(self):
        g = gnp(400, 0.02, seed=2)
        res = random_coloring(g, seed=3)
        assert res.rounds <= 60

    def test_reproducible(self):
        g = cycle(30)
        a = random_coloring(g, seed=7)
        b = random_coloring(g, seed=7)
        assert a.colors == b.colors

    def test_empty_and_isolated(self):
        assert random_coloring(empty(0)).colors == {}
        res = random_coloring(empty(4), seed=1)
        assert res.colors == {0: 0, 1: 0, 2: 0, 3: 0}

    def test_color_classes_partition(self):
        g = gnp(50, 0.1, seed=4)
        res = random_coloring(g, seed=5)
        classes = res.color_classes()
        all_nodes = set()
        for c, members in classes.items():
            assert is_independent(g, members)
            all_nodes |= members
        assert all_nodes == set(g.nodes)


class TestColorClassMaxIS:
    def test_best_class_reference(self):
        g = path(4).with_weights({0: 1, 1: 10, 2: 1, 3: 10})
        colors = {0: 0, 1: 1, 2: 0, 3: 1}
        chosen, weight = best_color_class(g, colors)
        assert chosen == frozenset({1, 3})
        assert weight == 20

    def test_distributed_matches_reference(self):
        g = uniform_weights(grid_2d(4, 5), 1, 9, seed=6)
        colors = greedy_coloring(g)
        res = distributed_color_class_maxis(g, colors)
        ref_set, ref_w = best_color_class(g, colors)
        assert res.independent_set == ref_set
        assert res.weight(g) == pytest.approx(ref_w)

    def test_delta_plus_one_approximation(self):
        # Heaviest class >= w(V)/#colors >= w(V)/(Δ+1).
        g = uniform_weights(gnp(40, 0.15, seed=7), 1, 20, seed=8)
        from repro.graphs import connected_components

        comp = max(connected_components(g), key=len)
        g, _ = g.induced_subgraph(comp).relabeled()
        colors = greedy_coloring(g)
        res = distributed_color_class_maxis(g, colors)
        assert res.weight(g) + 1e-9 >= g.total_weight() / (g.max_degree + 1)

    def test_rounds_grow_with_diameter(self):
        wide = uniform_weights(grid_2d(2, 8), 1, 5, seed=9)
        long = uniform_weights(grid_2d(2, 40), 1, 5, seed=10)
        res_wide = distributed_color_class_maxis(wide, greedy_coloring(wide))
        res_long = distributed_color_class_maxis(long, greedy_coloring(long))
        assert res_long.rounds > 3 * res_wide.rounds

    def test_rejects_improper_coloring(self):
        with pytest.raises(VerificationError):
            distributed_color_class_maxis(path(2), {0: 0, 1: 0})

    def test_output_independent(self):
        g = uniform_weights(grid_2d(3, 6), 1, 5, seed=11)
        res = distributed_color_class_maxis(g, greedy_coloring(g))
        assert is_independent(g, res.independent_set)


class TestPipelinedColorClass:
    def test_matches_naive_and_reference(self):
        from repro.coloring import pipelined_color_class_maxis

        g = uniform_weights(grid_2d(4, 6), 1, 9, seed=21)
        colors = greedy_coloring(g)
        fast = pipelined_color_class_maxis(g, colors)
        naive = distributed_color_class_maxis(g, colors)
        ref_set, ref_w = best_color_class(g, colors)
        assert fast.independent_set == naive.independent_set == ref_set
        assert fast.weight(g) == pytest.approx(ref_w)

    def test_beats_naive_with_many_colors(self):
        from repro.coloring import pipelined_color_class_maxis
        from repro.graphs import connected_components

        g = gnp(100, 0.08, seed=22)
        comp = max(connected_components(g), key=len)
        g, _ = g.induced_subgraph(comp).relabeled()
        g = uniform_weights(g, 1, 10, seed=23)
        colors = greedy_coloring(g)
        fast = pipelined_color_class_maxis(g, colors)
        naive = distributed_color_class_maxis(g, colors)
        if fast.metadata["num_colors"] >= 4:
            assert fast.rounds < naive.rounds

    def test_tree_build_overlaps_pipeline(self):
        """The tree build and the pipelined aggregation run concurrently,
        so total rounds are max(tree, pipeline) + flood — not the sum."""
        from repro.coloring import pipelined_color_class_maxis

        g = uniform_weights(grid_2d(2, 30), 1, 5, seed=26)
        colors = greedy_coloring(g)
        res = pipelined_color_class_maxis(g, colors)
        md = res.metadata
        expected = max(md["tree_rounds"], md["pipeline_rounds"]) + md["flood_rounds"]
        assert res.rounds == expected
        assert res.rounds < (md["tree_rounds"] + md["pipeline_rounds"]
                             + md["flood_rounds"])

    def test_pipeline_rounds_near_depth_plus_colors(self):
        from repro.coloring import pipelined_color_class_maxis

        g = uniform_weights(grid_2d(2, 30), 1, 5, seed=24)
        colors = greedy_coloring(g)
        res = pipelined_color_class_maxis(g, colors)
        depth = res.metadata["tree_depth"]
        c = res.metadata["num_colors"]
        assert res.metadata["pipeline_rounds"] <= depth + c + 4

    def test_class_weights_exact(self):
        from repro.coloring import pipelined_color_class_maxis

        g = uniform_weights(grid_2d(3, 5), 1, 9, seed=25)
        colors = greedy_coloring(g)
        res = pipelined_color_class_maxis(g, colors)
        for c, total in res.metadata["class_weights"].items():
            expected = sum(g.weight(v) for v in g.nodes if colors[v] == c)
            assert total == pytest.approx(expected)

    def test_rejects_improper_coloring(self):
        from repro.coloring import pipelined_color_class_maxis
        from repro.exceptions import VerificationError
        from repro.graphs import path

        with pytest.raises(VerificationError):
            pipelined_color_class_maxis(path(2), {0: 0, 1: 0})
