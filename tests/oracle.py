"""Brute-force oracles used only by tests.

For graphs with up to ~20 nodes, enumerate all independent sets by bitmask
— an implementation-independent ground truth for the exact solver and the
approximation certificates.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.graphs.weighted_graph import WeightedGraph


def brute_force_max_weight_is(graph: WeightedGraph) -> Tuple[FrozenSet[int], float]:
    """Exhaustive MaxWIS by bitmask enumeration (n <= ~20)."""
    nodes = list(graph.nodes)
    n = len(nodes)
    if n > 22:
        raise ValueError(f"brute force limited to 22 nodes, got {n}")
    index = {v: i for i, v in enumerate(nodes)}
    nbr_masks = [0] * n
    for u, v in graph.edges():
        nbr_masks[index[u]] |= 1 << index[v]
        nbr_masks[index[v]] |= 1 << index[u]

    best_mask, best_weight = 0, 0.0
    for mask in range(1 << n):
        ok = True
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            if nbr_masks[i] & mask:
                ok = False
                break
            m &= m - 1
        if not ok:
            continue
        weight = sum(graph.weight(nodes[i]) for i in range(n) if mask >> i & 1)
        if weight > best_weight:
            best_weight = weight
            best_mask = mask
    chosen = frozenset(nodes[i] for i in range(n) if best_mask >> i & 1)
    return chosen, best_weight


def count_independent_sets(graph: WeightedGraph) -> int:
    """Number of independent sets (including the empty set), n <= ~20."""
    nodes = list(graph.nodes)
    n = len(nodes)
    if n > 22:
        raise ValueError(f"brute force limited to 22 nodes, got {n}")
    index = {v: i for i, v in enumerate(nodes)}
    nbr_masks = [0] * n
    for u, v in graph.edges():
        nbr_masks[index[u]] |= 1 << index[v]
        nbr_masks[index[v]] |= 1 << index[u]
    count = 0
    for mask in range(1 << n):
        ok = True
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            if nbr_masks[i] & mask:
                ok = False
                break
            m &= m - 1
        count += ok
    return count
