"""Runner-level fault injection: delivery semantics and accounting."""

import json
from typing import Any, Mapping

from repro.faults import (CrashSchedule, MessageDelay, MessageDuplication,
                          MessageLoss, composite)
from repro.graphs import cycle, path, star
from repro.simulator import (NodeAlgorithm, NodeContext, Trace, install_faults,
                             run)

FAULT_KINDS = {"fault_drop", "fault_delay", "fault_dup", "crash", "restart"}
LEGACY_METRIC_KEYS = {"rounds", "messages", "total_bits", "max_message_bits",
                      "dropped_messages", "dropped_bits", "violations"}


class Collector(NodeAlgorithm):
    """Gathers every (round, sender, payload) it receives for ``rounds``."""

    def __init__(self, rounds: int):
        self._target = rounds
        self.seen = []

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(("hello", ctx.node_id))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for sender, payload in sorted(inbox.items()):
            self.seen.append((ctx.round_index, sender, payload))
        if ctx.round_index >= self._target:
            ctx.halt(tuple(self.seen))
        else:
            ctx.broadcast(("hello", ctx.node_id))


class CountRounds(NodeAlgorithm):
    def __init__(self, rounds: int):
        self._target = rounds

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(0)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index >= self._target:
            ctx.halt(ctx.round_index)
        else:
            ctx.broadcast(0)


class EchoNeighborSum(NodeAlgorithm):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(ctx.node_id)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        ctx.halt(sum(inbox.values()))


def _identity_holds(metrics) -> bool:
    return (metrics.total_bits == metrics.delivered_bits
            + metrics.dropped_bits + metrics.fault_dropped_bits)


class TestFaultFreeByteIdentity:
    """Acceptance: with faults=None everything matches pre-fault behavior."""

    def test_metrics_dict_has_exactly_legacy_keys(self):
        res = run(cycle(6), lambda: CountRounds(4), seed=3)
        assert set(res.metrics.to_dict()) == LEGACY_METRIC_KEYS

    def test_report_json_fixed_seed_golden(self):
        # A frozen report of the exact JSON a pre-fault build produced
        # for this (graph, algorithm, seed); any byte drift here is a
        # regression of the faults=None path.
        res = run(path(4), EchoNeighborSum, seed=11)
        report = json.dumps(
            {"outputs": res.outputs, "metrics": res.metrics.to_dict()},
            sort_keys=True,
        )
        assert report == (
            '{"metrics": {"dropped_bits": 0, "dropped_messages": 0, '
            '"max_message_bits": 3, "messages": 6, "rounds": 1, '
            '"total_bits": 15, "violations": []}, '
            '"outputs": {"0": 1, "1": 2, "2": 4, "3": 2}}'
        )

    # One algorithm per theorem family, frozen as sha256 over the full
    # fixed-seed report (chosen set + metrics + weight).  The hashes were
    # captured on the pre-CSR, pre-slot-scheduler build: the hot-path
    # rewrite must keep every one of these runs byte-identical.
    FAMILY_GOLDENS = {
        "thm1": "341a47364a7f3cf3e0a262c62d8ba3a561f1bfc9c84c2275b1196eed4e8b7fe5",
        "thm2": "7e4452f5e2ee51645bf5775b0970f4661afe4b11aed7540d838677aa4862c6b3",
        "thm3": "3f43412805e5c3917f93a5d95372f70198c9702dd56038ccaa93b57f79097f05",
        "thm8": "ce2bf693babfb50ba8a3ef2b5a60d980ab3020175f9e7575d767c55af5fe869a",
        "thm9": "f55d9812839c892ff433365234630bdd8c1514d3e3215e0dbca278690392ab21",
    }

    def _assert_family_goldens(self):
        import hashlib

        from repro.graphs import gnp
        from repro.graphs.weights import integer_weights
        from repro.registry import algorithm_registry

        def strip_wall(obj):
            # The span tree carries nondeterministic wall-clock timings;
            # everything else in the report must be frozen.
            if isinstance(obj, dict):
                return {k: strip_wall(v) for k, v in obj.items()
                        if k != "wall_seconds"}
            if isinstance(obj, list):
                return [strip_wall(x) for x in obj]
            return obj

        g = integer_weights(gnp(60, 0.1, seed=5), 100, seed=6)
        registry = algorithm_registry()
        for name, want in self.FAMILY_GOLDENS.items():
            res = registry[name](g, seed=42)
            doc = {
                "independent_set": sorted(int(v) for v in res.independent_set),
                "metrics": strip_wall(res.metrics.to_dict()),
                "weight": g.total_weight(res.independent_set),
            }
            blob = json.dumps(doc, sort_keys=True).encode()
            got = hashlib.sha256(blob).hexdigest()
            assert got == want, f"{name} report drifted: {got}"

    def test_theorem_family_reports_fixed_seed_golden(self):
        self._assert_family_goldens()

    def test_theorem_family_goldens_hold_under_columnar_backend(self):
        # The columnar backend must reproduce the per-node scheduler's
        # reports *byte for byte* — same hashes, not merely same sets.
        from repro.simulator.instrument import install_backend

        with install_backend("columnar"):
            self._assert_family_goldens()

    def test_theorem_family_goldens_hold_with_telemetry_enabled(self):
        # Telemetry is pure provenance: an installed run collector must
        # not perturb a single canonical byte, on either backend — and it
        # must actually have observed the runs (non-empty collection).
        from repro.obs.telemetry import collect_run_telemetry
        from repro.simulator.instrument import install_backend

        with collect_run_telemetry() as per_node:
            self._assert_family_goldens()
        assert per_node.backend_runs.get("per-node", 0) > 0

        with install_backend("columnar"):
            with collect_run_telemetry() as columnar:
                self._assert_family_goldens()
        assert columnar.backend_runs.get("columnar", 0) > 0
        assert columnar.kernels  # kernel timings were recorded

    def test_no_fault_events_without_plan(self):
        trace = Trace()
        run(cycle(5), lambda: CountRounds(3), seed=0, trace=trace)
        assert not any(e.kind in FAULT_KINDS for e in trace.events)

    def test_zero_rate_plan_matches_no_plan(self):
        # p=0 plans short-circuit without drawing from the fault stream,
        # so even the RNG-cursor side effects match the fault-free run.
        base = run(cycle(6), lambda: CountRounds(4), seed=5)
        plan = composite(MessageLoss(0.0), MessageDelay(0),
                         MessageDuplication(0.0))
        faulted = run(cycle(6), lambda: CountRounds(4), seed=5, faults=plan)
        assert faulted.outputs == base.outputs
        assert faulted.metrics.as_tuple() == base.metrics.as_tuple()
        assert faulted.metrics.to_dict() == base.metrics.to_dict()


class TestSingleMeasurementPerMessage:
    """Each charged message is measured by ``payload_bits`` at most once.

    The pre-overhaul runner re-measured payloads on the fault-scheduling
    and deferred-flush paths (up to three times per delayed message);
    the scheduler now threads the measured bits alongside the payload.
    The broadcast memo can make the call count *lower* than the message
    count (one measurement per distinct payload object), hence <=.
    """

    def _count_calls(self, monkeypatch):
        from repro.simulator import runner as runner_mod

        real = runner_mod.payload_bits
        calls = {"n": 0}

        def counting(payload):
            calls["n"] += 1
            return real(payload)

        monkeypatch.setattr(runner_mod, "payload_bits", counting)
        return calls

    def test_fault_free_path(self, monkeypatch):
        calls = self._count_calls(monkeypatch)
        res = run(cycle(8), lambda: Collector(4), seed=9)
        assert res.metrics.messages > 0
        assert calls["n"] <= res.metrics.messages

    def test_delay_faults_never_remeasure(self, monkeypatch):
        # Delays exercise the deferred schedule: the end-of-run flush and
        # halted-receiver sweeps charge the *stored* bits.
        calls = self._count_calls(monkeypatch)
        res = run(cycle(8), lambda: Collector(4), seed=9,
                  faults=composite(MessageDelay(3), MessageLoss(0.2)))
        assert res.metrics.messages > 0
        assert calls["n"] <= res.metrics.messages
        assert _identity_holds(res.metrics)


class TestMessageLoss:
    def test_full_loss_silences_the_network(self):
        res = run(path(3), EchoNeighborSum, seed=0,
                  faults=MessageLoss(1.0))
        assert res.outputs == {0: 0, 1: 0, 2: 0}
        m = res.metrics
        assert m.fault_dropped_messages == m.messages
        assert m.delivered_bits == 0
        assert _identity_holds(m)

    def test_partial_loss_deterministic(self):
        plan = MessageLoss(0.3)
        a = run(cycle(8), lambda: CountRounds(5), seed=9, faults=plan)
        b = run(cycle(8), lambda: CountRounds(5), seed=9, faults=plan)
        assert a.metrics.as_tuple() == b.metrics.as_tuple()
        assert a.outputs == b.outputs
        assert a.metrics.fault_dropped_messages > 0
        assert _identity_holds(a.metrics)

    def test_fault_drop_events_recorded(self):
        trace = Trace()
        res = run(cycle(8), lambda: CountRounds(5), seed=9,
                  faults=MessageLoss(0.3), trace=trace)
        drops = trace.events_of("fault_drop")
        assert len(drops) == res.metrics.fault_dropped_messages
        assert sum(e.detail[1] for e in drops) == res.metrics.fault_dropped_bits

    def test_node_coins_unperturbed_by_faults(self):
        # Same seed, with and without loss: node private draws must
        # match, so any output difference comes from delivery alone.
        class DrawAndTell(NodeAlgorithm):
            def on_start(self, ctx):
                self.coin = int(ctx.rng.integers(0, 2**31))
                ctx.broadcast(0)

            def on_round(self, ctx, inbox):
                ctx.halt(self.coin)

        base = run(cycle(5), DrawAndTell, seed=21)
        lossy = run(cycle(5), DrawAndTell, seed=21, faults=MessageLoss(0.5))
        assert base.outputs == lossy.outputs


class TestMessageDelay:
    def test_delayed_copy_arrives_later_intact(self):
        plan = MessageDelay(2)
        res = run(path(2), lambda: Collector(6), seed=4, faults=plan)
        m = res.metrics
        assert m.fault_delayed_messages > 0
        assert m.fault_duplicated_messages == 0
        # Every delivered payload is well-formed, just possibly late.
        for out in res.outputs.values():
            for round_index, sender, payload in out:
                assert payload[0] == "hello"
                assert payload[1] == sender
        assert _identity_holds(m)

    def test_delay_events_carry_the_offset(self):
        trace = Trace()
        run(path(2), lambda: Collector(6), seed=4,
            faults=MessageDelay(2), trace=trace)
        for e in trace.events_of("fault_delay"):
            assert 1 <= e.detail[1] <= 2

    def test_copies_in_flight_at_halt_are_flushed_as_drops(self):
        # EchoNeighborSum halts at round 1; a delayed copy scheduled for
        # round >= 2 can never be read and must be accounted as lost.
        res = run(star(4), EchoNeighborSum, seed=2, faults=MessageDelay(4))
        assert _identity_holds(res.metrics)


class TestMessageDuplication:
    def test_duplicate_arrives_one_round_later(self):
        # A one-shot sender: node broadcasts once at start, then only
        # listens, so the duplicate's slot is never overwritten by a
        # fresher message and the receiver sees the payload twice.
        class OneShot(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.broadcast(("hello", ctx.node_id))
                self.seen = []

            def on_round(self, ctx, inbox):
                for sender, payload in sorted(inbox.items()):
                    self.seen.append((ctx.round_index, sender, payload))
                if ctx.round_index >= 4:
                    ctx.halt(tuple(self.seen))

        res = run(path(2), OneShot, seed=0, faults=MessageDuplication(1.0))
        m = res.metrics
        assert m.fault_duplicated_messages == 2   # one per original message
        assert m.messages == 2 * m.fault_duplicated_messages
        assert _identity_holds(m)
        for out in res.outputs.values():
            assert [(r, p) for r, _s, p in out] == [
                (1, ("hello", 1 - out[0][1])), (2, ("hello", 1 - out[0][1])),
            ] or len(out) == 2

    def test_duplication_charged_on_the_wire(self):
        base = run(cycle(6), lambda: CountRounds(4), seed=3)
        duped = run(cycle(6), lambda: CountRounds(4), seed=3,
                    faults=MessageDuplication(1.0))
        assert duped.metrics.messages == 2 * base.metrics.messages
        assert _identity_holds(duped.metrics)


class TestCrashes:
    def test_fail_stop_node_never_outputs(self):
        plan = CrashSchedule(crashes={1: 2})
        res = run(cycle(5), lambda: CountRounds(6), seed=0, faults=plan)
        assert res.outputs[1] is None
        assert all(res.outputs[v] == 6 for v in (0, 2, 3, 4))
        assert res.metrics.crashed_nodes == 1
        assert res.metrics.restarted_nodes == 0

    def test_messages_to_down_node_are_fault_drops(self):
        trace = Trace()
        res = run(cycle(5), lambda: CountRounds(6), seed=0,
                  faults=CrashSchedule(crashes={1: 2}), trace=trace)
        assert res.metrics.fault_dropped_messages > 0
        assert trace.events_of("crash")[0].node == 1
        assert _identity_holds(res.metrics)

    def test_restart_resumes_with_state(self):
        # Node 1 pauses rounds 2-3 and resumes at 4: it misses inboxes
        # while down but still halts with its program state intact.
        plan = CrashSchedule(crashes={1: 2}, restarts={1: 4})
        res = run(cycle(5), lambda: CountRounds(6), seed=0, faults=plan)
        assert res.outputs[1] == 6
        assert res.metrics.crashed_nodes == 1
        assert res.metrics.restarted_nodes == 1

    def test_crash_events_once_per_node(self):
        trace = Trace()
        run(cycle(5), lambda: CountRounds(6), seed=0,
            faults=CrashSchedule(crashes={1: 2}, restarts={1: 4}),
            trace=trace)
        assert len(trace.events_of("crash")) == 1
        assert len(trace.events_of("restart")) == 1

    def test_crash_of_unknown_node_is_ignored(self):
        plan = CrashSchedule(crashes={99: 2})
        res = run(cycle(4), lambda: CountRounds(3), seed=0, faults=plan)
        assert res.metrics.crashed_nodes == 0


class TestAmbientInstallation:
    def test_install_faults_reaches_run(self):
        with install_faults(MessageLoss(1.0)):
            res = run(path(3), EchoNeighborSum, seed=0)
        assert res.metrics.fault_dropped_messages == res.metrics.messages

    def test_explicit_argument_wins_over_ambient(self):
        with install_faults(MessageLoss(1.0)):
            res = run(path(3), EchoNeighborSum, seed=0,
                      faults=MessageLoss(0.0))
        assert res.metrics.fault_dropped_messages == 0

    def test_registry_empties_after_block(self):
        with install_faults(MessageLoss(1.0)):
            pass
        res = run(path(3), EchoNeighborSum, seed=0)
        assert res.metrics.fault_dropped_messages == 0


class TestSerializationRoundTrip:
    def test_faulted_metrics_dict_round_trip(self):
        from repro.simulator import RunMetrics

        res = run(cycle(8), lambda: CountRounds(5), seed=9,
                  faults=composite(MessageLoss(0.2), MessageDuplication(0.1)))
        doc = res.metrics.to_dict()
        assert doc["fault_dropped_messages"] > 0
        back = RunMetrics.from_dict(json.loads(json.dumps(doc)))
        assert back.as_tuple() == res.metrics.as_tuple()
