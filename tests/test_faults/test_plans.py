"""Unit tests for the fault-plan vocabulary (repro.faults.plans)."""

import numpy as np
import pytest

from repro.faults import (CompositeFaults, CrashSchedule, FaultPlan,
                          MessageDelay, MessageDuplication, MessageLoss,
                          composite, fault_generator, parse_crash_spec)
from repro.simulator.randomness import spawn_node_rngs


class TestValidation:
    def test_loss_probability_range(self):
        with pytest.raises(ValueError, match="loss probability"):
            MessageLoss(1.5)
        with pytest.raises(ValueError, match="loss probability"):
            MessageLoss(-0.1)

    def test_delay_range(self):
        with pytest.raises(ValueError, match="max_rounds"):
            MessageDelay(-1)
        with pytest.raises(ValueError, match="delay probability"):
            MessageDelay(3, p=2.0)

    def test_dup_probability_range(self):
        with pytest.raises(ValueError, match="dup probability"):
            MessageDuplication(-0.5)

    def test_crash_round_must_be_positive(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            CrashSchedule(crashes={3: 0})

    def test_restart_requires_crash(self):
        with pytest.raises(ValueError, match="without a crash"):
            CrashSchedule(crashes={}, restarts={3: 5})

    def test_restart_after_crash(self):
        with pytest.raises(ValueError, match="strictly later"):
            CrashSchedule(crashes={3: 5}, restarts={3: 5})

    def test_composite_rejects_conflicting_crashes(self):
        with pytest.raises(ValueError, match="two crash schedules"):
            composite(CrashSchedule(crashes={1: 2}),
                      CrashSchedule(crashes={1: 3}))


class TestDescribe:
    def test_stable_strings(self):
        assert MessageLoss(0.1).describe() == "loss(0.1)"
        assert MessageDelay(3).describe() == "delay(3)"
        assert MessageDelay(3, p=0.5).describe() == "delay(3,p=0.5)"
        assert MessageDuplication(0.05).describe() == "dup(0.05)"
        assert (CrashSchedule(crashes={3: 5, 7: 10}, restarts={7: 20})
                .describe() == "crash(3@5,7@10/r20)")

    def test_composite_describe_joins(self):
        plan = composite(MessageLoss(0.1), MessageDelay(2))
        assert plan.describe() == "loss(0.1)+delay(2)"

    def test_repr_uses_describe(self):
        assert "loss(0.25)" in repr(MessageLoss(0.25))


class TestTransforms:
    def test_loss_zero_is_identity_without_rng_draws(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert MessageLoss(0.0).transform((0,), rng) == (0,)
        assert rng.bit_generator.state == before

    def test_loss_one_drops_everything(self):
        rng = np.random.default_rng(0)
        assert MessageLoss(1.0).transform((0,), rng) == ()

    def test_delay_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(200):
            (d,) = MessageDelay(3).transform((0,), rng)
            assert 0 <= d <= 3

    def test_delay_zero_is_identity(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert MessageDelay(0).transform((0,), rng) == (0,)
        assert rng.bit_generator.state == before

    def test_duplication_appends_next_round_copy(self):
        rng = np.random.default_rng(2)
        out = MessageDuplication(1.0).transform((0,), rng)
        assert out == (0, 1)

    def test_composite_folds_in_order(self):
        # Loss first can empty the multiset; later stages then no-op.
        plan = composite(MessageLoss(1.0), MessageDuplication(1.0))
        rng = np.random.default_rng(3)
        assert plan.transform((0,), rng) == ()

    def test_composite_flattens_nested(self):
        inner = composite(MessageLoss(0.1), MessageDelay(1))
        outer = composite(inner, MessageDuplication(0.2))
        assert isinstance(outer, CompositeFaults)
        assert len(outer.plans) == 3

    def test_composite_of_one_passes_through(self):
        p = MessageLoss(0.3)
        assert composite(p) is p


class TestSessions:
    def test_session_determinism(self):
        plan = composite(MessageLoss(0.3), MessageDelay(2))
        fates1 = [plan.begin(fault_generator(42)).message_fate(1, 0, 1)
                  for _ in range(1)]
        s1 = plan.begin(fault_generator(42))
        s2 = plan.begin(fault_generator(42))
        a = [s1.message_fate(r, 0, 1) for r in range(50)]
        b = [s2.message_fate(r, 0, 1) for r in range(50)]
        assert a == b
        assert fates1[0] == a[0]

    def test_crash_timetable(self):
        plan = CrashSchedule(crashes={3: 5, 7: 10}, restarts={7: 20})
        s = plan.begin(fault_generator(0))
        assert not s.down_at(3, 4)
        assert s.down_at(3, 5) and s.down_at(3, 10_000)
        assert s.never_returns(3, 5)
        assert s.down_at(7, 10) and s.down_at(7, 19)
        assert not s.down_at(7, 20)
        assert not s.never_returns(7, 10)
        assert s.crashed_this_round(5) == (3,)
        assert s.crashed_this_round(10) == (7,)
        assert s.restarted_this_round(20) == (7,)
        assert s.has_crashes

    def test_base_plan_has_no_crashes(self):
        assert not MessageLoss(0.5).begin(fault_generator(0)).has_crashes


class TestFaultGenerator:
    def test_disjoint_from_node_streams(self):
        # The fault stream must never equal any per-node stream of the
        # same master seed, or faults would silently perturb algorithms.
        node_rngs = spawn_node_rngs(123, tuple(range(64)))
        fault_draw = fault_generator(123).integers(0, 2**63)
        node_draws = {int(r.integers(0, 2**63)) for r in node_rngs.values()}
        assert int(fault_draw) not in node_draws

    def test_accepts_seedsequence(self):
        ss = np.random.SeedSequence(7)
        a = fault_generator(ss).integers(0, 2**63)
        b = fault_generator(7).integers(0, 2**63)
        assert int(a) == int(b)

    def test_none_seed_is_reproducible_entropy(self):
        # seed=None still yields *a* generator (entropy auto-drawn); we
        # only require it not to crash.
        fault_generator(None).random()


class TestParseCrashSpec:
    def test_round_trip(self):
        plan = parse_crash_spec("3@5,7@10/r20")
        assert plan.crashes == {3: 5, 7: 10}
        assert plan.restarts == {7: 20}
        assert plan.describe() == "crash(3@5,7@10/r20)"

    def test_bad_spec_raises_clear_error(self):
        with pytest.raises(ValueError, match="bad crash spec"):
            parse_crash_spec("3@x")
        with pytest.raises(ValueError, match="bad crash spec"):
            parse_crash_spec("3@5/20")

    def test_base_protocol_defaults(self):
        class Noop(FaultPlan):
            def describe(self):
                return "noop"

        rng = np.random.default_rng(0)
        assert Noop().transform((0,), rng) == (0,)
        assert Noop().crash_spec() == {}
