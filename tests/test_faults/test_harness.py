"""Resilience-sweep harness tests (repro.faults.harness)."""

import pytest

from repro.faults import (CrashSchedule, MessageLoss, ResilienceReport,
                          composite, resilience_sweep)
from repro.faults.harness import BASELINE
from repro.graphs import gnp, uniform_weights


def _graph(seed=0):
    g = gnp(40, 0.1, seed=seed)
    return uniform_weights(g, 1, 20, seed=seed)


class TestSweepStructure:
    def test_baseline_prepended_and_retention_one(self):
        rep = resilience_sweep(_graph(), ["mis-luby"],
                               [MessageLoss(0.1)], trials=3, master_seed=7)
        assert isinstance(rep, ResilienceReport)
        # baseline cell comes first even though we never asked for it
        assert rep.cells[0].plan == BASELINE
        base = rep.cell("mis-luby", BASELINE)
        assert base.ok == base.valid == base.trials == 3
        assert base.mean_retention == pytest.approx(1.0)
        assert base.mean_fault_drops == 0.0

    def test_cells_cover_algorithms_times_plans(self):
        rep = resilience_sweep(
            _graph(), ["mis-luby", "mis-det"],
            [None, MessageLoss(0.05), MessageLoss(0.1)],
            trials=2, master_seed=1)
        assert len(rep.cells) == 2 * 3
        assert {c.plan for c in rep.cells} == {BASELINE, "loss(0.05)",
                                               "loss(0.1)"}
        assert len(rep.batch.outcomes) == 2 * 3 * 2

    def test_deterministic_across_calls(self):
        kw = dict(trials=3, master_seed=11)
        a = resilience_sweep(_graph(), ["mis-luby"], [MessageLoss(0.2)], **kw)
        b = resilience_sweep(_graph(), ["mis-luby"], [MessageLoss(0.2)], **kw)
        assert [c.to_doc() for c in a.cells] == [c.to_doc() for c in b.cells]

    def test_duplicate_plan_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault plan"):
            resilience_sweep(_graph(), ["mis-luby"],
                             [MessageLoss(0.1), MessageLoss(0.1)], trials=1)

    def test_trials_must_be_positive(self):
        with pytest.raises(ValueError, match="trials must be >= 1"):
            resilience_sweep(_graph(), ["mis-luby"], [None], trials=0)

    def test_no_algorithms_rejected(self):
        with pytest.raises(ValueError, match="no algorithms"):
            resilience_sweep(_graph(), [], [None], trials=1)

    def test_to_docs_and_render(self):
        rep = resilience_sweep(_graph(), ["mis-luby"],
                               [MessageLoss(0.1)], trials=2, master_seed=3)
        docs = rep.to_docs()
        assert docs[0]["type"] == "resilience"
        assert docs[0]["cells"] == 2
        assert all(d["type"] == "resilience_cell" for d in docs[1:])
        table = rep.render()
        assert "loss(0.1)" in table and "retention" in table


class TestAcceptance:
    """ISSUE acceptance: a deterministic sweep (fixed seeds) shows thm8
    returning a valid independent set under 10% message loss, and
    crashes register in the cells."""

    def test_thm8_valid_under_ten_percent_loss(self):
        # Fixed seeds, as the acceptance criterion specifies: losing an
        # MIS "joined" announcement *can* break independence, so validity
        # under loss is seed-dependent — exactly what the harness is
        # built to measure.  At these seeds every trial survives.
        g = uniform_weights(gnp(30, 0.08, seed=7), 1, 20, seed=7)
        rep = resilience_sweep(g, ["thm8"], [MessageLoss(0.1)],
                               trials=3, master_seed=2)
        cell = rep.cell("thm8", "loss(0.1)")
        assert cell.ok == 3
        # Every completed output is re-validated from scratch; at these
        # fixed seeds the good-nodes output stays independent.
        assert cell.valid == 3
        assert 0.0 < cell.mean_retention <= 1.5
        assert cell.mean_fault_drops > 0
        # Determinism: the same sweep reproduces the same cells.
        again = resilience_sweep(g, ["thm8"], [MessageLoss(0.1)],
                                 trials=3, master_seed=2)
        assert again.cell("thm8", "loss(0.1)").to_doc() == cell.to_doc()

    def test_crash_plan_counted_per_cell(self):
        # Crash at round 1, before the victim can halt.  (A node that
        # has already halted when its crash round arrives is ignored —
        # node 9 is non-isolated, so Luby cannot halt it in on_start.)
        plan = composite(MessageLoss(0.05), CrashSchedule(crashes={9: 1}))
        rep = resilience_sweep(_graph(), ["mis-luby"], [plan],
                               trials=2, master_seed=9)
        cell = rep.cell("mis-luby", plan.describe())
        assert cell.mean_crashes == pytest.approx(1.0)
