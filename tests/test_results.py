"""Unit tests for the shared AlgorithmResult type."""

from repro.graphs import path
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics


def make(ind=frozenset({0, 2}), rounds=5, messages=9):
    return AlgorithmResult(
        independent_set=ind,
        metrics=RunMetrics(rounds=rounds, messages=messages, total_bits=100,
                           max_message_bits=20),
        metadata={"algorithm": "test"},
    )


def test_accessors():
    res = make()
    assert res.rounds == 5
    assert res.messages == 9
    assert res.size == 2


def test_weight_uses_graph():
    g = path(3).with_weights({0: 1.5, 1: 7.0, 2: 2.5})
    assert make().weight(g) == 4.0


def test_with_metadata_copies():
    res = make()
    extended = res.with_metadata(extra=42)
    assert extended.metadata["extra"] == 42
    assert extended.metadata["algorithm"] == "test"
    assert "extra" not in res.metadata
    assert extended.independent_set is res.independent_set


def test_frozen():
    import dataclasses

    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        make().independent_set = frozenset()  # type: ignore[misc]
