"""Failure injection: broken black boxes, hostile inputs, misuse.

A production library must fail loudly on contract violations, and its
verification layer must catch cheating components — these tests inject
each failure mode and assert the reaction.
"""

import pytest

from repro.core import (
    boost,
    certify_fraction_bound,
    certify_ratio,
    is_independent,
)
from repro.exceptions import (
    BandwidthExceeded,
    GraphError,
    RoundLimitExceeded,
    SolverLimitError,
    VerificationError,
)
from repro.graphs import WeightedGraph, empty, gnp, path, uniform_weights
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics


class TestCheatingInnerAlgorithms:
    """Boosting with a broken inner black box."""

    @pytest.fixture
    def graph(self):
        return uniform_weights(gnp(40, 0.15, seed=1), 1, 10, seed=2)

    def test_lazy_inner_still_independent(self, graph):
        """An inner algorithm that returns nothing: output is the empty
        set (a valid IS), and the run terminates."""

        def lazy(g, *, seed=None):
            return AlgorithmResult(frozenset(), RunMetrics(), {})

        res = boost(graph, lazy, eps=0.5, c=8.0, phases=3)
        assert res.independent_set == frozenset()
        # All phases executed (nothing reduced the weights).
        assert res.metadata["phases_executed"] == 3

    def test_greedy_cheat_inner_keeps_stack_property(self, graph):
        """Even a 'cheating' inner that grabs one arbitrary node per phase
        keeps the machinery sound: output independent, stack property holds."""

        def single_node(g, *, seed=None):
            heaviest = max(g.nodes, key=lambda v: (g.weight(v), v))
            return AlgorithmResult(frozenset({heaviest}), RunMetrics(), {})

        res = boost(graph, single_node, eps=0.5, c=8.0, phases=10)
        assert is_independent(graph, res.independent_set)
        assert res.weight(graph) + 1e-9 >= res.metadata["stack_value"]

    def test_non_independent_inner_is_caught_by_certification(self, graph):
        """If an inner returned a dependent set, downstream certification
        must refuse it (the pipelines trust their black boxes; the
        verification layer is the safety net)."""
        u, v = next(iter(graph.edges()))
        with pytest.raises(VerificationError):
            certify_fraction_bound(graph, frozenset({u, v}), 2.0)
        with pytest.raises(VerificationError):
            certify_ratio(graph, frozenset({u, v}), 2.0, opt=1.0)


class TestHostileInputs:
    def test_nan_weight_rejected(self):
        with pytest.raises((GraphError, ValueError)):
            WeightedGraph.from_edges([0], [], {0: float("nan")})
        # NaN is not < 0; the constructor must still not accept it silently
        # as a usable weight for comparisons... document: NaN propagates
        # into verification where any bound check fails loudly.

    def test_infinite_weight_flows_to_certification(self):
        g = path(2).with_weights({0: float("inf"), 1: 1.0})
        cert = certify_fraction_bound(g, frozenset({0}), 2.0)
        assert cert.holds  # inf >= inf/2

    def test_solver_limit(self):
        with pytest.raises(SolverLimitError):
            from repro.core import exact_max_weight_is

            exact_max_weight_is(empty(10_000))

    def test_round_limit_reports_unhalted(self):
        from repro.simulator import NodeAlgorithm, run

        class Stubborn(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(RoundLimitExceeded) as exc:
            run(path(3), Stubborn, max_rounds=5)
        assert exc.value.unhalted == 3

    def test_tiny_bandwidth_kills_protocols(self):
        from repro.core import good_nodes_approx
        from repro.simulator import BandwidthPolicy

        g = uniform_weights(gnp(30, 0.2, seed=3), 1, 10, seed=4)
        # factor=1 => 5-6 bits per message: the (degree, weight) exchange
        # cannot fit and must raise, not silently truncate.
        with pytest.raises(BandwidthExceeded):
            good_nodes_approx(g, seed=5, policy=BandwidthPolicy.congest(factor=1))
