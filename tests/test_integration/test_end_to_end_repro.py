"""Whole-suite reproducibility and failure-rate stress checks."""

from repro.bench import experiment_e3_boosting
from repro.core import certify_fraction_bound, theorem2_maxis
from repro.graphs import gnp, uniform_weights


def test_experiment_reports_are_deterministic():
    a = experiment_e3_boosting(n=70, eps_values=(1.0, 0.5))
    b = experiment_e3_boosting(n=70, eps_values=(1.0, 0.5))
    assert a.rows == b.rows
    assert a.findings == b.findings


def test_theorem2_zero_failures_over_many_seeds():
    """The w.h.p. guarantee in practice: 50 independent runs on one
    instance, zero certificate violations."""
    eps = 0.5
    g = uniform_weights(gnp(120, 0.08, seed=500), 1, 50, seed=501)
    denominator = (1 + eps) * (g.max_degree + 1)
    failures = 0
    for seed in range(50):
        res = theorem2_maxis(g, eps, seed=seed)
        if not certify_fraction_bound(g, res.independent_set, denominator).holds:
            failures += 1
    assert failures == 0
