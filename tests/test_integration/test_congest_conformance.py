"""CONGEST conformance: every distributed algorithm in the library runs
under the strict O(log n)-bit policy, and message sizes actually scale
logarithmically."""

import math

import pytest

from repro.core import (
    boppana_is,
    good_nodes_approx,
    low_degree_maxis,
    sparsified_approx,
    theorem1_maxis,
    theorem2_maxis,
    weighted_greedy_maxis,
)
from repro.mis import coloring_mis
from repro.graphs import gnp, integer_weights, uniform_weights
from repro.mis import ghaffari_mis, local_minima_mis, luby_mis
from repro.simulator import BandwidthPolicy


@pytest.fixture(scope="module")
def graph():
    return integer_weights(gnp(120, 0.08, seed=300), 1000, seed=301)


STRICT = BandwidthPolicy.congest(factor=32, strict=True)

def _h_partition_result(g):
    from repro.primitives import h_partition

    part = h_partition(g, alpha=8, policy=STRICT)

    class _Shim:
        metrics = part.metrics

    return _Shim()


DISTRIBUTED = {
    "luby": lambda g: luby_mis(g, seed=1, policy=STRICT),
    "ghaffari": lambda g: ghaffari_mis(g, seed=2, policy=STRICT),
    "det-mis": lambda g: local_minima_mis(g, policy=STRICT),
    "coloring-mis": lambda g: coloring_mis(g, seed=9, policy=STRICT),
    "weighted-greedy": lambda g: weighted_greedy_maxis(g, policy=STRICT),
    "boppana": lambda g: boppana_is(g, seed=3, policy=STRICT),
    "thm8": lambda g: good_nodes_approx(g, seed=4, policy=STRICT),
    "thm9": lambda g: sparsified_approx(g, seed=5, policy=STRICT),
    "thm1": lambda g: theorem1_maxis(g, 0.5, seed=6, policy=STRICT),
    "thm2": lambda g: theorem2_maxis(g, 0.5, seed=7, policy=STRICT),
    "thm5": lambda g: low_degree_maxis(g, 0.5, seed=8, policy=STRICT),
    "h-partition": _h_partition_result,
}


@pytest.mark.parametrize("name", sorted(DISTRIBUTED))
def test_runs_under_strict_congest(graph, name):
    # Strict mode raises on any over-budget message; completing is the test.
    res = DISTRIBUTED[name](graph)
    assert not res.metrics.violations


@pytest.mark.parametrize("name", ["luby", "boppana", "thm8"])
def test_message_sizes_logarithmic(name):
    """Max message bits grow like log n, not like n."""
    sizes = []
    for n in (64, 256, 1024):
        g = uniform_weights(gnp(n, 8.0 / n, seed=n), 1, 50, seed=n + 1)
        res = DISTRIBUTED[name](g)
        sizes.append(res.metrics.max_message_bits)
    # 16x more nodes: message size grows by far less than 4x.
    assert sizes[-1] <= 4 * sizes[0]
    assert sizes[-1] <= 32 * math.log2(2048)
