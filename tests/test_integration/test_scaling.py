"""Round-complexity scaling shapes on moderate sizes.

These are the slow-ish sanity checks behind the complexity claims: MIS
rounds grow (at most) logarithmically; the sparsified pipeline's rounds
are insensitive to Δ growth; the ranking algorithm is always one round.
"""

import math

import pytest

from repro.core import boppana_is, sparsified_approx
from repro.graphs import gnp, random_regular, skewed_heavy_set
from repro.mis import luby_mis


class TestLubyScaling:
    def test_rounds_grow_sublinearly(self):
        rounds = []
        for n in (100, 400, 1600):
            g = gnp(n, 8.0 / n, seed=n)
            rounds.append(luby_mis(g, seed=1).rounds)
        # 16x more nodes: rounds should grow by far less than 4x.
        assert rounds[-1] <= 4 * rounds[0]
        assert rounds[-1] <= 12 * math.log2(1600)

    def test_rounds_do_not_explode_with_density(self):
        sparse = luby_mis(gnp(300, 4.0 / 300, seed=1), seed=2)
        dense = luby_mis(gnp(300, 40.0 / 300, seed=1), seed=2)
        assert dense.rounds <= 3 * sparse.rounds + 10


class TestSparsifiedScaling:
    def test_rounds_flat_in_delta(self):
        """The whole point of Theorem 9: Δ grows, rounds don't."""
        rounds = []
        for d in (20, 40, 80):
            g = skewed_heavy_set(random_regular(400, d, seed=d), fraction=0.02,
                                 seed=d + 1)
            rounds.append(sparsified_approx(g, seed=3).rounds)
        assert max(rounds) <= 2.0 * min(rounds) + 10


class TestRankingScaling:
    @pytest.mark.parametrize("n", [100, 1000])
    def test_always_one_round(self, n):
        g = random_regular(n, 6, seed=n)
        assert boppana_is(g, seed=1).rounds == 1
