"""Medium-scale end-to-end runs (n in the low thousands).

These guard against accidental quadratic blow-ups in the simulator or the
pipelines — each run must finish quickly and still satisfy its bound.
"""

import pytest

from repro.core import (
    boppana_is,
    certify_fraction_bound,
    low_degree_maxis,
    theorem2_maxis,
)
from repro.graphs import gnp, random_regular, uniform_weights
from repro.mis import luby_mis
from repro.core.verify import assert_maximal_independent_set


@pytest.fixture(scope="module")
def big_graph():
    return uniform_weights(gnp(2000, 8.0 / 2000, seed=1), 1, 100, seed=2)


def test_luby_at_n2000(big_graph):
    res = luby_mis(big_graph, seed=3)
    assert_maximal_independent_set(big_graph, res.independent_set)
    assert res.rounds <= 30


def test_theorem2_at_n2000(big_graph):
    eps = 0.5
    res = theorem2_maxis(big_graph, eps, seed=4)
    cert = certify_fraction_bound(
        big_graph, res.independent_set,
        (1 + eps) * (big_graph.max_degree + 1),
    )
    assert cert.holds


def test_theorem5_at_n3000():
    g = random_regular(3000, 6, seed=5)
    eps = 0.5
    res = low_degree_maxis(g, eps, seed=6)
    assert res.size >= g.n / ((1 + eps) * 7)


def test_ranking_at_n5000():
    g = random_regular(5000, 8, seed=7)
    res = boppana_is(g, seed=8)
    assert res.rounds == 1
    assert res.size >= 5000 / (8 * 9)
