"""Cross-module integration: every headline theorem inequality, end to end,
on shared realistic instances."""

import pytest

from repro.core import (
    bar_yehuda_maxis,
    boppana_is,
    certify_fraction_bound,
    exact_max_weight_is,
    good_nodes_approx,
    greedy_maxis,
    low_arboricity_maxis,
    low_degree_maxis,
    sparsified_approx,
    theorem1_maxis,
    theorem2_maxis,
)
from repro.graphs import (
    arboricity,
    caterpillar,
    gnp,
    integer_weights,
    random_regular,
    uniform_weights,
)


@pytest.fixture(scope="module")
def instance():
    g = uniform_weights(gnp(50, 0.12, seed=100), 1, 30, seed=101)
    _, opt = exact_max_weight_is(g)
    return g, opt


class TestAllAlgorithmsOnOneInstance:
    """Every algorithm in the library, certified on the same graph."""

    def test_theorem8(self, instance):
        g, _ = instance
        res = good_nodes_approx(g, seed=1)
        assert certify_fraction_bound(g, res.independent_set,
                                      4 * (g.max_degree + 1)).holds

    def test_theorem9(self, instance):
        g, _ = instance
        res = sparsified_approx(g, seed=2)
        assert certify_fraction_bound(g, res.independent_set,
                                      8 * g.max_degree).holds

    def test_theorem1(self, instance):
        g, opt = instance
        res = theorem1_maxis(g, 0.5, seed=3)
        assert res.weight(g) + 1e-9 >= opt / (1.5 * g.max_degree)

    def test_theorem2(self, instance):
        g, opt = instance
        res = theorem2_maxis(g, 0.5, seed=4)
        assert res.weight(g) + 1e-9 >= opt / (1.5 * g.max_degree)

    def test_theorem3(self, instance):
        g, opt = instance
        alpha = arboricity(g)
        res = low_arboricity_maxis(g, 0.5, alpha=alpha, seed=5)
        assert res.weight(g) + 1e-9 >= opt / (8 * 1.5 * alpha)

    def test_baseline(self, instance):
        g, opt = instance
        res = bar_yehuda_maxis(g, seed=6)
        assert res.weight(g) * 2 * g.max_degree + 1e-9 >= opt

    def test_greedy(self, instance):
        g, opt = instance
        assert g.total_weight(greedy_maxis(g)) * g.max_degree + 1e-9 >= opt


class TestGuaranteeOrdering:
    """The paper's narrative: better guarantees cost more rounds (or more
    approximation), and the guarantees nest as claimed."""

    def test_arboricity_beats_delta_on_trees(self):
        g = uniform_weights(caterpillar(30, 15), 1, 10, seed=200)
        eps = 0.5
        alpha = arboricity(g)
        assert 8 * (1 + eps) * alpha < (1 + eps) * g.max_degree

    def test_eps_tightens_weight(self):
        # Smaller ε never hurts the guarantee; measured weights should not
        # collapse as ε shrinks (same seed, more phases).
        g = uniform_weights(gnp(80, 0.1, seed=201), 1, 20, seed=202)
        loose = theorem1_maxis(g, 2.0, seed=7)
        tight = theorem1_maxis(g, 0.1, seed=7)
        assert tight.weight(g) >= 0.8 * loose.weight(g)

    def test_theorem5_matches_mis_quality_cheaply(self):
        g = random_regular(300, 4, seed=203)
        res = low_degree_maxis(g, 0.5, seed=8)
        # n/((1+ε)(Δ+1)) with ε=.5, Δ=4: 40 nodes minimum.
        assert res.size >= 300 / (1.5 * 5)
        # And it used O(1/ε) rounds: far fewer than n.
        assert res.rounds < 100

    def test_single_ranking_round_weaker_than_boosted(self):
        g = random_regular(300, 4, seed=204)
        one = boppana_is(g, seed=9)
        boosted = low_degree_maxis(g, 0.5, seed=9)
        assert boosted.size >= one.size


class TestWeightScaleInvariance:
    def test_theorem2_invariant_under_scaling(self):
        g = integer_weights(gnp(90, 0.1, seed=205), 10, seed=206)
        scaled = g.with_weights({v: g.weight(v) * 10 ** 6 for v in g.nodes})
        a = theorem2_maxis(g, 0.5, seed=10)
        b = theorem2_maxis(scaled, 0.5, seed=10)
        assert a.independent_set == b.independent_set
        assert a.rounds == b.rounds

    def test_baseline_not_invariant(self):
        g = integer_weights(gnp(90, 0.1, seed=205), 10, seed=206)
        scaled = g.with_weights({v: g.weight(v) * 10 ** 6 for v in g.nodes})
        a = bar_yehuda_maxis(g, seed=11)
        b = bar_yehuda_maxis(scaled, seed=11)
        assert b.rounds > a.rounds
