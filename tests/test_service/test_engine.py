"""SolverEngine semantics: coalescing, admission, deadlines, drain."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.api import SolveRequest
from repro.core import weighted_greedy_maxis
from repro.graphs import gnp, uniform_weights
from repro.service import (
    DeadlineExceeded,
    RequestRejected,
    SolverEngine,
    UnknownAlgorithmError,
)


@pytest.fixture
def instance():
    return uniform_weights(gnp(24, 0.15, seed=1), 1, 10, seed=2)


def run(coro):
    return asyncio.run(coro)


def counting_registry(calls, *, delay=0.0, release=None):
    """A one-algorithm registry whose wrapper counts its invocations.

    ``delay`` keeps the dispatch thread busy; ``release`` (an Event)
    blocks execution until the test opens it.
    """

    def wrapper(graph, seed=None, **params):
        calls.append(seed)
        if release is not None:
            release.wait(timeout=10.0)
        if delay:
            time.sleep(delay)
        return weighted_greedy_maxis(graph, seed=seed)

    return {"counted": wrapper}


async def started_engine(**kwargs):
    engine = SolverEngine(**kwargs)
    await engine.start()
    return engine


class TestCoalescing:
    def test_concurrent_identical_requests_execute_once(self, instance):
        calls = []

        async def scenario():
            engine = await started_engine(
                registry=counting_registry(calls, delay=0.05)
            )
            request = SolveRequest(graph=instance, algorithm="counted",
                                   seed=7)
            served = await asyncio.gather(
                *(engine.submit(request) for _ in range(10))
            )
            await engine.aclose()
            return served

        served = run(scenario())
        assert len(calls) == 1, "coalescer must run the solver exactly once"
        blobs = {s.report.to_json() for s in served}
        assert len(blobs) == 1, "every waiter sees the same report"
        assert sum(1 for s in served if s.coalesced) == 9
        assert all(s.report.ok for s in served)

    def test_distinct_seeds_do_not_coalesce(self, instance):
        calls = []

        async def scenario():
            engine = await started_engine(registry=counting_registry(calls))
            await asyncio.gather(*(
                engine.submit(SolveRequest(graph=instance,
                                           algorithm="counted", seed=s))
                for s in range(4)
            ))
            await engine.aclose()

        run(scenario())
        assert sorted(calls) == [0, 1, 2, 3]

    def test_sequential_resubmit_executes_again_without_cache(self, instance):
        calls = []

        async def scenario():
            engine = await started_engine(registry=counting_registry(calls))
            request = SolveRequest(graph=instance, algorithm="counted", seed=7)
            first = await engine.submit(request)
            second = await engine.submit(request)
            await engine.aclose()
            return first, second

        first, second = run(scenario())
        assert len(calls) == 2
        assert first.report.to_json() == second.report.to_json()


class TestAdmissionControl:
    def test_queue_full_rejects(self, instance):
        calls = []
        release = threading.Event()

        async def scenario():
            engine = await started_engine(
                registry=counting_registry(calls, release=release),
                max_queue=1, max_batch=1,
            )
            blocked = [asyncio.ensure_future(engine.submit(
                SolveRequest(graph=instance, algorithm="counted", seed=0)
            ))]
            # Wait until the dispatcher has parked on the release gate
            # (queue empty again), then occupy the single queue slot.
            while not calls:
                await asyncio.sleep(0.01)
            blocked.append(asyncio.ensure_future(engine.submit(
                SolveRequest(graph=instance, algorithm="counted", seed=1)
            )))
            await asyncio.sleep(0)  # let the submit reach put_nowait
            with pytest.raises(RequestRejected) as info:
                await engine.submit(SolveRequest(
                    graph=instance, algorithm="counted", seed=99
                ))
            release.set()
            await asyncio.gather(*blocked, return_exceptions=True)
            await engine.aclose()
            return info.value

        exc = run(scenario())
        assert exc.reason == "queue_full"

    def test_unknown_algorithm_rejected_before_admission(self, instance):
        async def scenario():
            engine = await started_engine(registry=counting_registry([]))
            try:
                with pytest.raises(UnknownAlgorithmError, match="nosuch"):
                    await engine.submit(SolveRequest(
                        graph=instance, algorithm="nosuch"
                    ))
            finally:
                await engine.aclose()

        run(scenario())

    def test_rejections_counted_in_metrics(self, instance):
        calls = []
        release = threading.Event()

        async def scenario():
            engine = await started_engine(
                registry=counting_registry(calls, release=release),
                max_queue=1, max_batch=1,
            )
            blocked = [asyncio.ensure_future(engine.submit(
                SolveRequest(graph=instance, algorithm="counted", seed=0)
            ))]
            while not calls:
                await asyncio.sleep(0.01)
            blocked.append(asyncio.ensure_future(engine.submit(
                SolveRequest(graph=instance, algorithm="counted", seed=1)
            )))
            await asyncio.sleep(0)
            with pytest.raises(RequestRejected):
                await engine.submit(SolveRequest(
                    graph=instance, algorithm="counted", seed=99
                ))
            snapshot = engine.metrics_snapshot()
            release.set()
            await asyncio.gather(*blocked, return_exceptions=True)
            await engine.aclose()
            return snapshot

        snapshot = run(scenario())
        assert snapshot["rejected"] == 1
        assert snapshot["schema"] == "v1"


class TestDeadlines:
    def test_deadline_exceeded(self, instance):
        release = threading.Event()

        async def scenario():
            engine = await started_engine(
                registry=counting_registry([], release=release)
            )
            try:
                with pytest.raises(DeadlineExceeded):
                    await engine.submit(SolveRequest(
                        graph=instance, algorithm="counted", seed=7,
                        timeout_s=0.05,
                    ))
            finally:
                release.set()
                await engine.aclose()

        run(scenario())

    def test_timeout_does_not_kill_coalesced_twin(self, instance):
        """One waiter's deadline must not cancel the shared computation."""
        release = threading.Event()

        async def scenario():
            engine = await started_engine(
                registry=counting_registry([], release=release)
            )
            request = SolveRequest(graph=instance, algorithm="counted",
                                   seed=7)
            hurried = asyncio.ensure_future(engine.submit(
                SolveRequest(graph=instance, algorithm="counted", seed=7,
                             timeout_s=0.05)
            ))
            patient = asyncio.ensure_future(engine.submit(request))
            await asyncio.sleep(0.15)
            release.set()
            outcomes = await asyncio.gather(hurried, patient,
                                            return_exceptions=True)
            await engine.aclose()
            return outcomes

        hurried, patient = run(scenario())
        assert isinstance(hurried, DeadlineExceeded)
        assert not isinstance(patient, Exception) and patient.report.ok


class TestDrain:
    def test_draining_rejects_new_work(self, instance):
        async def scenario():
            engine = await started_engine(registry=counting_registry([]))
            engine.begin_drain()
            try:
                with pytest.raises(RequestRejected) as info:
                    await engine.submit(SolveRequest(
                        graph=instance, algorithm="counted"
                    ))
            finally:
                await engine.aclose()
            return info.value

        assert run(scenario()).reason == "draining"

    def test_drain_waits_for_in_flight(self, instance):
        calls = []
        release = threading.Event()

        async def scenario():
            engine = await started_engine(
                registry=counting_registry(calls, release=release)
            )
            pending = asyncio.ensure_future(engine.submit(SolveRequest(
                graph=instance, algorithm="counted", seed=7
            )))
            while not calls:
                await asyncio.sleep(0.01)
            asyncio.get_running_loop().call_later(0.05, release.set)
            await engine.drain()
            assert engine.in_flight == 0
            served = await pending
            await engine.aclose()
            return served

        assert run(scenario()).report.ok


class TestCache:
    def test_resubmit_after_completion_hits_disk_cache(self, instance,
                                                       tmp_path):
        async def scenario():
            engine = await started_engine(cache_dir=str(tmp_path))
            request = SolveRequest(graph=instance, algorithm="thm2", seed=7,
                                   params={"eps": 0.5})
            cold = await engine.submit(request)
            warm = await engine.submit(request)
            snapshot = engine.metrics_snapshot()
            await engine.aclose()
            return cold, warm, snapshot

        cold, warm, snapshot = run(scenario())
        assert not cold.cached and warm.cached
        assert cold.report.to_json() == warm.report.to_json()
        assert snapshot["cache_hits"] == 1

    def test_engine_report_matches_api_solve(self, instance, tmp_path):
        from repro.api import solve

        async def scenario():
            engine = await started_engine(cache_dir=str(tmp_path))
            served = await engine.submit(SolveRequest(
                graph=instance, algorithm="thm2", seed=7,
                params={"eps": 0.5},
            ))
            await engine.aclose()
            return served

        served = run(scenario())
        direct = solve(instance, "thm2", seed=7, eps=0.5)
        assert served.report.to_json() == direct.to_json()


class TestValidation:
    @pytest.mark.parametrize("kwargs, match", [
        ({"workers": 0}, "workers"),
        ({"max_queue": 0}, "max_queue"),
        ({"max_batch": 0}, "max_batch"),
    ])
    def test_constructor_bounds(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SolverEngine(**kwargs)

    def test_submit_before_start_raises(self, instance):
        engine = SolverEngine()

        async def scenario():
            with pytest.raises(RuntimeError, match="not started"):
                await engine.submit(SolveRequest(
                    graph=instance, algorithm="thm2"
                ))

        run(scenario())
