"""``GET /v1/metrics``: JSON snapshot schema and Prometheus exposition."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.api import SolveRequest
from repro.graphs import gnp, uniform_weights
from repro.service.stats import STAGES, ServiceStats

from .test_server import ServerThread, http


@pytest.fixture
def instance():
    return uniform_weights(gnp(24, 0.15, seed=5), 1, 12, seed=6)


def raw_http(port, method, path):
    """One request, returning (status, headers, body-text)."""

    async def go():
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
                     f"Connection: close\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        return raw

    raw = asyncio.run(go())
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


class TestJsonSnapshot:
    def test_snapshot_schema(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=3,
                               params={"eps": 0.5})
        with ServerThread() as server:
            http(server.port, "POST", "/v1/solve",
                 request.to_json().encode())
            status, doc = http(server.port, "GET", "/v1/metrics")
        assert status == 200
        # Legacy keys survive; the telemetry PR's additions ride along.
        for key in ("requests", "completed", "failed", "rejected",
                    "coalesced", "cache_hits", "timeouts", "batches",
                    "p50_latency_s", "p95_latency_s", "p99_latency_s",
                    "observed_latencies", "latency_reservoir", "stages",
                    "backend", "histograms"):
            assert key in doc, key
        reservoir = doc["latency_reservoir"]
        assert reservoir["scheme"].startswith("reservoir-sampling")
        assert reservoir["capacity"] >= reservoir["size"] >= 1
        assert reservoir["observed_total"] == doc["observed_latencies"] == 1
        assert set(doc["stages"]) <= set(STAGES)
        assert doc["stages"]["solve"]["count"] == 1
        assert "repro_service_request_latency_seconds" in doc["histograms"]

    def test_explicit_json_format(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/metrics?format=json")
        assert status == 200
        assert doc["requests"] == 0

    def test_unknown_format_400(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/metrics?format=xml")
        assert status == 400
        assert "unknown metrics format" in doc["error"]["message"]

    def test_empty_reservoir_percentiles_are_zero(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/metrics")
        assert status == 200
        assert doc["observed_latencies"] == 0
        assert doc["p50_latency_s"] == 0.0
        assert doc["p95_latency_s"] == 0.0
        assert doc["p99_latency_s"] == 0.0


class TestPrometheusExposition:
    def test_content_type_and_families(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=3,
                               params={"eps": 0.5})
        with ServerThread() as server:
            http(server.port, "POST", "/v1/solve",
                 request.to_json().encode())
            status, headers, text = raw_http(
                server.port, "GET", "/v1/metrics?format=prometheus")
        assert status == 200
        assert headers["content-type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_service_request_latency_seconds histogram" \
            in text
        assert "repro_service_requests_total 1" in text
        assert "repro_service_completed_total 1" in text
        assert re.search(r"repro_service_in_flight \d", text)
        assert re.search(r"repro_service_uptime_seconds \S+", text)

    def test_histogram_buckets_monotone_with_sum_and_count(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=3,
                               params={"eps": 0.5})
        with ServerThread() as server:
            for seed in (1, 2, 3):
                body = SolveRequest(graph=instance, algorithm="thm2",
                                    seed=seed,
                                    params={"eps": 0.5}).to_json().encode()
                http(server.port, "POST", "/v1/solve", body)
            _, _, text = raw_http(
                server.port, "GET", "/v1/metrics?format=prometheus")
        family = "repro_service_request_latency_seconds"
        buckets = re.findall(
            rf'^{family}_bucket{{le="([^"]+)"}} (\d+)$', text, re.M)
        assert buckets, text
        assert buckets[-1][0] == "+Inf"
        counts = [int(c) for _le, c in buckets]
        assert counts == sorted(counts)
        count = int(re.search(rf"^{family}_count (\d+)$", text, re.M)[1])
        assert counts[-1] == count == 3
        assert float(re.search(rf"^{family}_sum (\S+)$", text, re.M)[1]) > 0

    def test_stage_histogram_labelled_per_stage(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=3,
                               params={"eps": 0.5})
        with ServerThread() as server:
            http(server.port, "POST", "/v1/solve",
                 request.to_json().encode())
            _, _, text = raw_http(
                server.port, "GET", "/v1/metrics?format=prometheus")
        for stage in ("queue_wait", "solve", "serialize"):
            assert re.search(
                r'repro_service_stage_latency_seconds_count'
                rf'{{stage="{stage}"}} \d+', text), stage

    def test_exposition_parses_line_by_line(self):
        with ServerThread() as server:
            _, _, text = raw_http(
                server.port, "GET", "/v1/metrics?format=prometheus")
        assert text.endswith("\n")
        for line in text.splitlines():
            assert (line.startswith("# ")
                    or re.match(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \S+$',
                                line)), line


class TestServiceStatsUnit:
    def test_absorb_run_telemetry_folds_counters(self):
        stats = ServiceStats()
        stats.absorb_run_telemetry({
            "runs": {"columnar": 2},
            "kernels": {"GhaffariMIS": {"runs": 2, "seconds": 0.5}},
            "fallbacks": [{"algorithm": "Foo", "reason": "no-kernel",
                           "count": 3, "detail": "no kernel for Foo"}],
        })
        snap = stats.snapshot(in_flight=0, queue_depth=0, draining=False)
        backend = snap["backend"]
        assert backend["runs"] == {"columnar": 2}
        assert backend["kernels"]["GhaffariMIS"] == {"runs": 2,
                                                     "seconds": 0.5}
        assert backend["fallbacks"] == 3
        assert backend["fallback_reasons"] == {"no-kernel": 3}
        assert backend["fallback_details"] == {"no-kernel":
                                               "no kernel for Foo"}

    def test_absorb_empty_telemetry_is_noop(self):
        stats = ServiceStats()
        stats.absorb_run_telemetry({})
        snap = stats.snapshot(in_flight=0, queue_depth=0, draining=False)
        assert snap["backend"]["fallbacks"] == 0

    def test_observe_stages_skips_total(self):
        stats = ServiceStats()
        stats.observe_stages({"solve": 0.1, "total": 0.2})
        snap = stats.snapshot(in_flight=0, queue_depth=0, draining=False)
        assert set(snap["stages"]) == {"solve"}

    def test_render_prometheus_counter_sync_is_idempotent(self):
        stats = ServiceStats()
        stats.requests = 5
        first = stats.render_prometheus(in_flight=0, queue_depth=0,
                                        draining=False)
        second = stats.render_prometheus(in_flight=0, queue_depth=0,
                                         draining=False)
        assert "repro_service_requests_total 5" in first
        assert "repro_service_requests_total 5" in second

    def test_latency_reservoir_survives_sustained_load(self):
        stats = ServiceStats()
        for i in range(10_000):
            stats.observe_latency(i / 10_000)
        snap = stats.snapshot(in_flight=0, queue_depth=0, draining=False)
        assert snap["latency_reservoir"]["observed_total"] == 10_000
        assert snap["latency_reservoir"]["size"] == \
            snap["latency_reservoir"]["capacity"] == 4096
        # Unbiased over the whole run, not the newest 4096.
        assert snap["p50_latency_s"] == pytest.approx(0.5, abs=0.05)

    def test_json_and_prometheus_agree_on_counts(self):
        stats = ServiceStats()
        stats.requests = 3
        stats.completed = 2
        for s in (0.01, 0.02):
            stats.observe_latency(s)
        snap = stats.snapshot(in_flight=1, queue_depth=0, draining=False)
        text = stats.render_prometheus(in_flight=1, queue_depth=0,
                                       draining=False)
        hist = snap["histograms"]["repro_service_request_latency_seconds"]
        assert hist["series"][0]["count"] == 2
        assert "repro_service_request_latency_seconds_count 2" in text
        assert "repro_service_requests_total 3" in text


class TestHeadAndMetricsJson:
    def test_head_metrics_has_no_body(self):
        with ServerThread() as server:
            status, headers, body = raw_http(server.port, "HEAD",
                                             "/v1/metrics")
        assert status == 200
        assert body == ""
        assert int(headers["content-length"]) > 0

    def test_json_metrics_content_type(self):
        with ServerThread() as server:
            status, headers, body = raw_http(server.port, "GET",
                                             "/v1/metrics")
        assert status == 200
        assert headers["content-type"] == "application/json"
        json.loads(body)
