"""The graph plane over HTTP: ``POST /v1/graphs`` + ``graph_ref`` solves.

The contract under test is *byte identity*: a solve that references a
stored graph must return exactly the envelope report a body-carried
solve of the same graph returns — same cache keys, same coalescing,
same canonical JSON — on both execution backends.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import SolveRequest, solve
from repro.graphs import gnp, uniform_weights
from repro.graphs import io as graph_io
from repro.graphs.store import shm_segment_name
from repro.service.loadgen import register_pool_graphs

from .test_server import ServerThread, http


@pytest.fixture
def instance():
    return uniform_weights(gnp(26, 0.14, seed=11), 1, 15, seed=12)


def _request_doc(graph, *, backend=None):
    req = SolveRequest(graph=graph, algorithm="thm2", seed=3,
                       params={"eps": 0.5},
                       **({"backend": backend} if backend else {}))
    return req.to_doc()


def _ref_doc(doc, ref):
    out = dict(doc)
    out["graph"] = {"ref": ref}
    return out


class TestGraphRegistry:
    def test_register_binary_and_json_agree(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            status, doc = http(srv.port, "POST", "/v1/graphs",
                               graph_io.to_bytes(instance))
            assert status == 200
            assert doc["graph_ref"] == instance.fingerprint()
            assert doc["n"] == instance.n and doc["m"] == instance.m
            body = json.dumps(_request_doc(instance)["graph"]).encode()
            status2, doc2 = http(srv.port, "POST", "/v1/graphs", body)
            assert status2 == 200
            assert doc2["graph_ref"] == doc["graph_ref"]

    def test_describe_and_evict(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            _, doc = http(srv.port, "POST", "/v1/graphs",
                          graph_io.to_bytes(instance))
            ref = doc["graph_ref"]
            status, info = http(srv.port, "GET", f"/v1/graphs/{ref}")
            assert status == 200 and info["n"] == instance.n
            status, out = http(srv.port, "DELETE", f"/v1/graphs/{ref}")
            assert status == 200 and out["evicted"] is True
            status, _ = http(srv.port, "GET", f"/v1/graphs/{ref}")
            assert status == 404

    def test_unknown_ref_404(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            status, _ = http(srv.port, "GET", "/v1/graphs/" + "0" * 64)
            assert status == 404
            g = uniform_weights(gnp(8, 0.3, seed=1), 1, 5, seed=2)
            doc = _ref_doc(_request_doc(g), "0" * 64)
            status, err = http(srv.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 404
            assert "0" * 16 in err["error"]["message"]

    def test_corrupt_blob_400(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            from repro import blob

            status, _ = http(srv.port, "POST", "/v1/graphs",
                             blob.MAGIC + b"\x00" * 16)
            assert status == 400

    def test_solve_by_ref_byte_identical_to_body(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            _, reg = http(srv.port, "POST", "/v1/graphs",
                          graph_io.to_bytes(instance))
            body_doc = _request_doc(instance)
            s1, env1 = http(srv.port, "POST", "/v1/solve",
                            json.dumps(body_doc).encode())
            s2, env2 = http(srv.port, "POST", "/v1/solve",
                            json.dumps(_ref_doc(body_doc,
                                                reg["graph_ref"])).encode())
            assert s1 == s2 == 200
            assert env1["report"] == env2["report"]
            # Same logical request => same cache key: the ref solve is a
            # cache hit on the body solve's entry.
            assert env2["served"]["cached"]
            # ...and matches the in-process API result byte for byte.
            local = solve(instance, "thm2", seed=3, eps=0.5)
            assert json.dumps(env1["report"], sort_keys=True,
                              separators=(",", ":")) == local.to_json()

    def test_ref_solve_identical_across_backends(self, instance, tmp_path):
        reports = {}
        for backend in ("per-node", "columnar"):
            with ServerThread(graph_store=str(tmp_path / backend)) as srv:
                _, reg = http(srv.port, "POST", "/v1/graphs",
                              graph_io.to_bytes(instance))
                doc = _ref_doc(_request_doc(instance, backend=backend),
                               reg["graph_ref"])
                status, env = http(srv.port, "POST", "/v1/solve",
                                   json.dumps(doc).encode())
                assert status == 200
                report = dict(env["report"])
                report.pop("backend", None)
                reports[backend] = json.dumps(report, sort_keys=True)
        assert reports["per-node"] == reports["columnar"]

    def test_evicted_ref_solve_404(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            _, reg = http(srv.port, "POST", "/v1/graphs",
                          graph_io.to_bytes(instance))
            ref = reg["graph_ref"]
            doc = _ref_doc(_request_doc(instance), ref)
            body = json.dumps(doc).encode()
            status, _ = http(srv.port, "POST", "/v1/solve", body)
            assert status == 200
            http(srv.port, "DELETE", f"/v1/graphs/{ref}")
            # The parse cache remembers the request; liveness is
            # re-checked per request, so the evicted ref 404s anyway.
            status, _ = http(srv.port, "POST", "/v1/solve", body)
            assert status == 404

    def test_oversized_blob_413(self, tmp_path):
        import numpy as np

        from repro import blob

        fake = blob.pack(
            {"kind": "weighted_graph", "fingerprint": "f" * 64,
             "n": 2_000_000, "m": 0},
            [("ids", np.zeros(0, dtype=np.int64)),
             ("indptr", np.zeros(1, dtype=np.int64)),
             ("indices", np.zeros(0, dtype=np.int64)),
             ("weights", np.zeros(0, dtype=np.float64))],
        )
        with ServerThread(graph_store=str(tmp_path)) as srv:
            status, _ = http(srv.port, "POST", "/v1/graphs", fake)
            assert status == 413

    def test_no_shm_leak_after_shutdown(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            _, reg = http(srv.port, "POST", "/v1/graphs",
                          graph_io.to_bytes(instance))
            doc = _ref_doc(_request_doc(instance), reg["graph_ref"])
            status, _ = http(srv.port, "POST", "/v1/solve",
                             json.dumps(doc).encode())
            assert status == 200
        if os.path.isdir("/dev/shm"):
            seg = shm_segment_name(instance.fingerprint())
            assert not os.path.exists(os.path.join("/dev/shm", seg))


class TestLoadgenGraphRef:
    def test_register_pool_graphs_preserves_keys(self, tmp_path):
        from repro.service.loadgen import build_request_pool

        pool = build_request_pool(seeds=(1,))
        with ServerThread(graph_store=str(tmp_path)) as srv:
            ref_pool = register_pool_graphs("127.0.0.1", srv.port, pool)
            assert len(ref_pool) == len(pool)
            for before, after in zip(pool, ref_pool):
                assert after.request.key() == before.request.key()
                body = json.loads(after.body)
                assert body["graph"] == {
                    "ref": before.graph.fingerprint()}
                assert len(after.body) < len(before.body)
            # A ref body solves and reports ok.
            status, env = http(srv.port, "POST", "/v1/solve",
                               ref_pool[0].body)
            assert status == 200 and env["report"]["ok"]
