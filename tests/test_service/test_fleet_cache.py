"""The two-tier result cache: LRU semantics and tier interplay.

Tier 1 is the per-worker in-memory :class:`LruCache`; tier 2 the shared
JSON disk cache.  The invariants: eviction respects ``maxsize`` in LRU
order, a disk hit falls through to populate the memory tier, and the
canonical report bytes are identical to ``repro.solve`` no matter which
tier served them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import SolveRequest, solve
from repro.graphs import gnp, uniform_weights
from repro.service import SolverEngine
from repro.service.fleet import LruCache


@pytest.fixture
def instance():
    return uniform_weights(gnp(24, 0.15, seed=1), 1, 10, seed=2)


def run(coro):
    return asyncio.run(coro)


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_eviction_respects_maxsize_in_lru_order(self):
        cache = LruCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.put("d", "D")  # evicts "a", the least recently used
        assert len(cache) == 3
        assert "a" not in cache
        assert [k for k in ("b", "c", "d") if k in cache] == ["b", "c", "d"]

    def test_get_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # "b" is now the eviction candidate
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency_and_overwrites(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)   # refresh + overwrite, no growth
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_never_exceeds_maxsize(self):
        cache = LruCache(5)
        for i in range(100):
            cache.put(f"k{i}", i)
            assert len(cache) <= 5
        assert cache.snapshot()["evictions"] == 95

    def test_snapshot_counters(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        snap = cache.snapshot()
        assert snap["maxsize"] == 2
        assert snap["size"] == 1
        assert snap["hits"] == 2
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(2 / 3)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(-1)


class TestTwoTierEngine:
    """SolverEngine with both tiers enabled, driven directly."""

    def _request(self, instance, seed=7):
        return SolveRequest(graph=instance, algorithm="thm2", seed=seed,
                            params={"eps": 0.5})

    def test_memory_tier_serves_repeat_without_dispatch(self, instance):
        async def scenario():
            engine = SolverEngine(memory_cache=8)
            await engine.start()
            first = await engine.submit(self._request(instance))
            second = await engine.submit(self._request(instance))
            snap = engine.metrics_snapshot()
            await engine.aclose()
            return first, second, snap

        first, second, snap = run(scenario())
        assert first.cache_tier == ""
        assert second.cache_tier == "memory"
        assert second.cached
        assert snap["memory_cache_hits"] == 1
        assert snap["executed"] == 1
        assert snap["batches"] == 1, "the repeat never reached dispatch"
        assert snap["memory_cache"]["hits"] == 1

    def test_disk_hit_falls_through_into_memory_tier(self, instance,
                                                     tmp_path):
        cache_dir = str(tmp_path / "disk")

        async def warm():
            engine = SolverEngine(cache_dir=cache_dir)
            await engine.start()
            served = await engine.submit(self._request(instance))
            await engine.aclose()
            return served

        async def cold_worker():
            # A fresh worker (empty LRU) sharing the disk tier: first
            # request is a disk hit that must populate the LRU, second
            # is a memory hit.
            engine = SolverEngine(cache_dir=cache_dir, memory_cache=8)
            await engine.start()
            first = await engine.submit(self._request(instance))
            second = await engine.submit(self._request(instance))
            snap = engine.metrics_snapshot()
            await engine.aclose()
            return first, second, snap

        computed = run(warm())
        first, second, snap = run(cold_worker())
        assert not computed.cached
        assert first.cache_tier == "disk"
        assert second.cache_tier == "memory"
        assert snap["cache_hits"] == 1
        assert snap["memory_cache_hits"] == 1
        assert snap["executed"] == 0, "the cold worker never ran the solver"

    def test_byte_identity_across_tiers_and_api_solve(self, instance,
                                                      tmp_path):
        request = self._request(instance)
        reference = solve(instance, "thm2", seed=7, eps=0.5).to_json()

        async def scenario():
            engine = SolverEngine(cache_dir=str(tmp_path / "disk"),
                                  memory_cache=8)
            await engine.start()
            served = [await engine.submit(request) for _ in range(3)]
            await engine.aclose()
            return served

        served = run(scenario())
        tiers = [s.cache_tier for s in served]
        assert tiers == ["", "memory", "memory"]
        for s in served:
            assert s.report.to_json() == reference

        async def disk_then_memory():
            engine = SolverEngine(cache_dir=str(tmp_path / "disk"),
                                  memory_cache=8)
            await engine.start()
            served = [await engine.submit(request) for _ in range(2)]
            await engine.aclose()
            return served

        second_worker = run(disk_then_memory())
        assert [s.cache_tier for s in second_worker] == ["disk", "memory"]
        for s in second_worker:
            assert s.report.to_json() == reference

    def test_memory_tier_bounded_by_maxsize(self, instance):
        async def scenario():
            engine = SolverEngine(memory_cache=2)
            await engine.start()
            for seed in range(5):
                await engine.submit(self._request(instance, seed=seed))
            snap = engine.metrics_snapshot()
            await engine.aclose()
            return snap

        snap = run(scenario())
        assert snap["memory_cache"]["size"] == 2
        assert snap["memory_cache"]["evictions"] == 3

    def test_memory_cache_disabled_by_default(self, instance):
        async def scenario():
            engine = SolverEngine()
            await engine.start()
            await engine.submit(self._request(instance))
            snap = engine.metrics_snapshot()
            ready = engine.ready
            await engine.aclose()
            return snap, ready

        snap, ready = run(scenario())
        assert snap["memory_cache"] is None
        assert snap["memory_cache_hits"] == 0
        assert ready
