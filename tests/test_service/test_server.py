"""The HTTP layer: routes, status mapping, and cross-path byte identity."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import SCHEMA_VERSION, SolveRequest, solve
from repro.graphs import gnp, uniform_weights
from repro.service import SolverEngine, SolverServer, build_request_pool, run_loadgen
from repro.service.loadgen import _Client


@pytest.fixture
def instance():
    return uniform_weights(gnp(26, 0.14, seed=11), 1, 15, seed=12)


class ServerThread:
    """A live ``repro serve`` stack on an ephemeral port, off-thread,
    so tests (and the loadgen, which owns its own event loop) can talk
    to it over real sockets."""

    def __init__(self, **engine_kwargs):
        self.engine_kwargs = engine_kwargs
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = None
        self._error = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=20.0):
            raise RuntimeError(f"server failed to start: {self._error}")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=20.0)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = SolverServer(SolverEngine(**self.engine_kwargs),
                                  host="127.0.0.1", port=0)
            try:
                self.port = await server.start()
            except Exception as exc:  # pragma: no cover - startup failure
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await server.shutdown()

        asyncio.run(main())


def http(port, method, path, body=b""):
    """One request against the live server; returns (status, doc)."""

    async def go():
        client = _Client("127.0.0.1", port)
        try:
            status, payload = await client.request(method, path, body)
        finally:
            await client.close()
        return status, json.loads(payload) if payload else None

    return asyncio.run(go())


class TestRoutes:
    def test_health(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["schema"] == SCHEMA_VERSION

    def test_algorithms(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/algorithms")
        assert status == 200
        names = {entry["name"] for entry in doc["algorithms"]}
        assert {"thm1", "thm2", "thm3"} <= names

    def test_metrics_counts_requests(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=3,
                               params={"eps": 0.5})
        with ServerThread() as server:
            http(server.port, "POST", "/v1/solve",
                 request.to_json().encode())
            status, doc = http(server.port, "GET", "/v1/metrics")
        assert status == 200
        assert doc["requests"] == 1
        assert doc["completed"] == 1
        assert doc["batches"] >= 1

    def test_unknown_route_404(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v2/anything")
        assert status == 404
        assert doc["error"]["code"] == "not_found"

    def test_solve_requires_post(self):
        with ServerThread() as server:
            status, doc = http(server.port, "GET", "/v1/solve")
        assert status == 405


class TestSolveEndpoint:
    def test_fixed_seed_response_is_byte_identical_to_api_solve(
            self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=7,
                               params={"eps": 0.5})
        with ServerThread() as server:
            status, envelope = http(server.port, "POST", "/v1/solve",
                                    request.to_json().encode())
        assert status == 200
        wire = json.dumps(envelope["report"], sort_keys=True,
                          separators=(",", ":"))
        direct = solve(instance, "thm2", seed=7, eps=0.5)
        assert wire == direct.to_json()
        served = envelope["served"]
        assert set(served) == {"cached", "coalesced", "seconds",
                               "trace_id", "stages"}
        assert served["cached"] is False
        assert served["coalesced"] is False
        # Every response carries a 32-hex trace id and a per-stage
        # latency breakdown covering at least queue/solve/serialize.
        assert len(served["trace_id"]) == 32
        int(served["trace_id"], 16)
        assert {"queue_wait", "solve", "serialize"} <= set(served["stages"])
        assert all(s >= 0.0 for s in served["stages"].values())

    def test_spec_graph_request_solves(self):
        body = json.dumps({
            "schema": SCHEMA_VERSION,
            "graph": {"inline": {"spec": "gnp:20,0.2",
                                 "weights": "uniform:1,9", "seed": 5}},
            "algorithm": "thm1",
            "seed": 2,
            "params": {"eps": 0.5},
        }).encode()
        with ServerThread() as server:
            status, envelope = http(server.port, "POST", "/v1/solve", body)
        assert status == 200
        assert envelope["report"]["ok"] is True

    def test_repeat_request_served_from_cache(self, instance, tmp_path):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=7,
                               params={"eps": 0.5})
        body = request.to_json().encode()
        with ServerThread(cache_dir=str(tmp_path)) as server:
            _, cold = http(server.port, "POST", "/v1/solve", body)
            _, warm = http(server.port, "POST", "/v1/solve", body)
        assert cold["served"]["cached"] is False
        assert warm["served"]["cached"] is True
        assert warm["report"] == cold["report"]

    @pytest.mark.parametrize("body, match", [
        (b"{nope", "not valid JSON"),
        (b'{"schema": "v9", "graph": {}, "algorithm": "thm2"}',
         "unsupported schema"),
        (b'{"schema": "v1", "graph": {"spec": "nosuch:1"}, '
         b'"algorithm": "thm2"}', "unknown graph kind"),
        (b'{"schema": "v2", "graph": {"spec": "gnp:8,0.2"}, '
         b'"algorithm": "thm2"}', "exactly one of inline/ref/delta"),
    ])
    def test_bad_request_400(self, body, match):
        with ServerThread() as server:
            status, doc = http(server.port, "POST", "/v1/solve", body)
        assert status == 400
        assert match in doc["error"]["message"]

    def test_unknown_algorithm_400(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2")
        doc = request.to_doc()
        doc["algorithm"] = "nosuch"
        with ServerThread() as server:
            status, doc = http(server.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
        assert status == 400
        assert "nosuch" in doc["error"]["message"]

    def test_oversized_spec_graph_413_without_materializing(self):
        # Valid JSON, valid schema — but the spec declares more nodes
        # than the server admits.  This must be a clean 413 *before* the
        # generator runs (a 10^8-node gnp would otherwise stall or OOM
        # the engine and surface as a 500-class failure).
        body = json.dumps({
            "schema": SCHEMA_VERSION,
            "graph": {"inline": {"spec": "gnp:100000000,0.5", "seed": 1}},
            "algorithm": "thm2",
        }).encode()
        with ServerThread() as server:
            status, doc = http(server.port, "POST", "/v1/solve", body)
        assert status == 413
        assert "100000000 nodes" in doc["error"]["message"]

    def test_oversized_inline_graph_413(self):
        from repro.service.server import MAX_GRAPH_NODES

        body = json.dumps({
            "schema": SCHEMA_VERSION,
            "graph": {"inline": {
                "nodes": [[i, 1] for i in range(MAX_GRAPH_NODES + 1)],
                "edges": []}},
            "algorithm": "thm2",
        }).encode()
        with ServerThread() as server:
            status, doc = http(server.port, "POST", "/v1/solve", body)
        assert status == 413
        assert str(MAX_GRAPH_NODES) in doc["error"]["message"]

    def test_oversized_grid_and_caterpillar_specs_413(self):
        # Size declared multiplicatively must be caught too.
        for spec in ("grid:20000,20000", "caterpillar:1000000,200"):
            body = json.dumps({
                "schema": SCHEMA_VERSION,
                "graph": {"inline": {"spec": spec}},
                "algorithm": "mis-det",
            }).encode()
            with ServerThread() as server:
                status, doc = http(server.port, "POST", "/v1/solve", body)
            assert status == 413, spec

    def test_unknown_backend_400(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2",
                               params={"eps": 0.5})
        doc = request.to_doc()
        doc["backend"] = "gpu"
        with ServerThread() as server:
            status, doc = http(server.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
        assert status == 400
        assert "unknown backend" in doc["error"]["message"]

    def test_columnar_backend_response_byte_identical(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm8", seed=5)
        columnar = SolveRequest(graph=instance, algorithm="thm8", seed=5,
                                backend="columnar")
        with ServerThread() as server:
            s1, d1 = http(server.port, "POST", "/v1/solve",
                          request.to_json().encode())
            s2, d2 = http(server.port, "POST", "/v1/solve",
                          columnar.to_json().encode())
        assert s1 == s2 == 200
        assert d2["report"] == d1["report"]

    def test_malformed_request_line_400(self):
        async def go(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return int(line.split()[1])

        with ServerThread() as server:
            assert asyncio.run(go(server.port)) == 400

    def test_keep_alive_serves_multiple_requests(self, instance):
        request = SolveRequest(graph=instance, algorithm="thm2", seed=1,
                               params={"eps": 0.5})
        body = request.to_json().encode()

        async def go(port):
            client = _Client("127.0.0.1", port)
            try:
                statuses = []
                for _ in range(3):
                    status, _payload = await client.request(
                        "POST", "/v1/solve", body
                    )
                    statuses.append(status)
                # all three went over one connection
                assert client._writer is not None
                return statuses
            finally:
                await client.close()

        with ServerThread() as server:
            assert asyncio.run(go(server.port)) == [200, 200, 200]


class TestLoadgen:
    def test_loadgen_round_trip_verifies_all_reports(self, tmp_path):
        pool = build_request_pool(
            specs=(("gnp:18,0.2", "uniform:1,9"), ("cycle:16", "unit")),
            algorithms=("thm2",),
            seeds=(1, 2),
        )
        out = tmp_path / "BENCH_service.json"
        with ServerThread(cache_dir=str(tmp_path / "cache")) as server:
            doc = run_loadgen(port=server.port, clients=4, duration_s=1.0,
                              out_path=str(out), pool=pool)
        assert doc["completed"] > 0
        assert doc["status_counts"] == {"200": doc["sent"]}
        assert doc["served"]["cached"] > 0
        assert doc["served"]["with_trace_id"] == doc["completed"]
        assert doc["latency"]["p99_s"] >= doc["latency"]["p50_s"]
        assert {"queue_wait", "serialize"} <= set(doc["latency"]["stages"])
        assert doc["divergent_reports"] == 0
        assert doc["verification"]["failures"] == []
        assert doc["verification"]["verified"] == doc["unique_reports"] > 0
        written = json.loads(out.read_text())
        assert written["kind"] == "service_loadgen"
        assert written["throughput_rps"] > 0

    def test_pool_is_deterministic(self):
        a = build_request_pool(seeds=(1,))
        b = build_request_pool(seeds=(1,))
        assert [e.request.key() for e in a] == [e.request.key() for e in b]
        assert [e.body for e in a] == [e.body for e in b]
