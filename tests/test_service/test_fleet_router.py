"""The sharded fleet end to end: placement, coalescing, failover, drain.

These tests run the real router over an in-process
:class:`~repro.service.fleet.supervisor.ThreadedFleet` — the same HTTP
surface as the subprocess fleet (which ``benchmarks/fleet_smoke.py``
covers) without fork cost, so they stay in tier 1.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.api import SolveRequest, solve
from repro.core import weighted_greedy_maxis
from repro.graphs import gnp, uniform_weights
from repro.service import SolverEngine, SolverServer
from repro.service.fleet import shard_for_request
from repro.service.fleet.aggregate import (
    aggregate_snapshots,
    render_fleet_prometheus,
)
from repro.service.fleet.saturation import start_fleet
from repro.service.loadgen import _Client


@pytest.fixture
def instance():
    return uniform_weights(gnp(24, 0.15, seed=1), 1, 10, seed=2)


def http(port, method, path, body=b""):
    async def go():
        client = _Client("127.0.0.1", port)
        try:
            status, payload = await client.request(method, path, body)
        finally:
            await client.close()
        return status, json.loads(payload) if payload else None

    return asyncio.run(go())


def http_burst(port, bodies):
    """Fire all bodies concurrently over independent connections."""

    async def one(body):
        client = _Client("127.0.0.1", port)
        try:
            status, payload = await client.request("POST", "/v1/solve", body)
        finally:
            await client.close()
        return status, json.loads(payload) if payload else None

    async def go():
        return await asyncio.gather(*(one(b) for b in bodies))

    return asyncio.run(go())


def counting_registry(calls, *, delay=0.0):
    def wrapper(graph, seed=None, **params):
        calls.append(seed)
        if delay:
            time.sleep(delay)
        return weighted_greedy_maxis(graph, seed=seed)

    return {"counted": wrapper}


def request_body(instance, *, algorithm="thm2", seed=7, params=None):
    request = SolveRequest(graph=instance, algorithm=algorithm, seed=seed,
                           params={"eps": 0.5} if params is None else params)
    return request, request.to_json().encode()


class TestPlacement:
    def test_same_body_lands_on_same_worker(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            cache_dir=str(tmp_path / "disk"))
        try:
            _, body = request_body(instance)
            workers = set()
            for _ in range(4):
                status, doc = http(fleet.port, "POST", "/v1/solve", body)
                assert status == 200
                workers.add(doc["served"]["worker_id"])
            assert len(workers) == 1, "placement must be sticky"
        finally:
            fleet.close()

    def test_placement_matches_shard_function(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            cache_dir=str(tmp_path / "disk"))
        try:
            for seed in range(4):
                request, body = request_body(instance, seed=seed)
                expected = shard_for_request(request, 2)
                status, doc = http(fleet.port, "POST", "/v1/solve", body)
                assert status == 200
                assert doc["served"]["worker_id"] == str(expected), seed
        finally:
            fleet.close()

    def test_distinct_keys_spread_across_workers(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            cache_dir=str(tmp_path / "disk"))
        try:
            workers = set()
            for seed in range(8):
                _, body = request_body(instance, seed=seed)
                status, doc = http(fleet.port, "POST", "/v1/solve", body)
                assert status == 200
                workers.add(doc["served"]["worker_id"])
            assert workers == {"0", "1"}
        finally:
            fleet.close()


class TestCoalescingSurvivesSharding:
    def test_each_unique_fingerprint_executes_exactly_once(self, instance):
        """The acceptance pin: N concurrent duplicates of K unique
        requests through the sharded router execute the solver exactly
        K times fleet-wide — coalescing (and the memory tier) survive
        sharding because duplicates always land on the same worker."""
        calls = []
        fleet = start_fleet(workers=4, threaded=True, memory_cache=32,
                            registry=counting_registry(calls, delay=0.05))
        try:
            unique = 3
            dup = 6
            bodies = []
            for seed in range(unique):
                _, body = request_body(instance, algorithm="counted",
                                       seed=seed, params={})
                bodies.extend([body] * dup)
            results = http_burst(fleet.port, bodies)
            assert all(status == 200 for status, _ in results)
            status, metrics = http(fleet.port, "GET", "/v1/metrics")
            assert status == 200
        finally:
            fleet.close()
        assert len(calls) == unique, (
            f"expected exactly {unique} solver executions fleet-wide, "
            f"saw {len(calls)}")
        assert metrics["executed"] == unique
        per_worker_executed = sum(
            w["executed"] for w in metrics["workers"].values())
        assert per_worker_executed == unique
        served = metrics["coalesced"] + metrics["memory_cache_hits"]
        assert served == unique * (dup - 1)

    def test_sequential_repeats_served_from_memory_tier(self, instance):
        calls = []
        fleet = start_fleet(workers=2, threaded=True, memory_cache=32,
                            registry=counting_registry(calls))
        try:
            _, body = request_body(instance, algorithm="counted", seed=5,
                                   params={})
            docs = [http(fleet.port, "POST", "/v1/solve", body)[1]
                    for _ in range(3)]
        finally:
            fleet.close()
        assert len(calls) == 1
        assert "cache_tier" not in docs[0]["served"]
        assert [d["served"].get("cache_tier") for d in docs[1:]] == [
            "memory", "memory"]


class TestByteIdentity:
    def test_fleet_response_is_byte_identical_to_api_solve(self, instance,
                                                           tmp_path):
        request, body = request_body(instance)
        reference = solve(instance, "thm2", seed=7, eps=0.5).to_json()
        fleet = start_fleet(workers=2, threaded=True, memory_cache=8,
                            cache_dir=str(tmp_path / "disk"))
        try:
            blobs = set()
            for _ in range(3):  # computed, then memory-tier repeats
                status, doc = http(fleet.port, "POST", "/v1/solve", body)
                assert status == 200
                blobs.add(json.dumps(doc["report"], sort_keys=True,
                                     separators=(",", ":")))
        finally:
            fleet.close()
        assert blobs == {reference}

    def test_fleet_matches_single_process_serve(self, instance, tmp_path):
        """Same fixed-seed request through `repro serve` (single
        process) and through the 2-worker fleet: identical canonical
        report bytes, tier by tier."""
        request, body = request_body(instance, seed=13)

        single = {}

        async def run_single():
            engine = SolverEngine(cache_dir=str(tmp_path / "single"))
            server = SolverServer(engine, host="127.0.0.1", port=0)
            port = await server.start()
            client = _Client("127.0.0.1", port)
            try:
                _, payload = await client.request("POST", "/v1/solve", body)
                single["report"] = json.loads(payload)["report"]
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(run_single())

        fleet = start_fleet(workers=2, threaded=True, memory_cache=8,
                            cache_dir=str(tmp_path / "fleet"))
        try:
            status, doc = http(fleet.port, "POST", "/v1/solve", body)
            assert status == 200
        finally:
            fleet.close()
        canon = lambda d: json.dumps(d, sort_keys=True, separators=(",", ":"))  # noqa: E731
        assert canon(doc["report"]) == canon(single["report"])


class TestHealthAndReadiness:
    def test_fleet_health_aggregates_workers(self, instance):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            status, doc = http(fleet.port, "GET", "/v1/health")
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["role"] == "fleet-router"
            assert doc["shards"] == 2
            assert doc["workers_alive"] == 2
            assert set(doc["workers"]) == {"0", "1"}
            for worker_id, entry in doc["workers"].items():
                assert entry["alive"]
                assert entry["worker_id"] == worker_id
                assert entry["backend"] == "per-node"
        finally:
            fleet.close()

    def test_fleet_ready_all_workers(self, instance):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            status, doc = http(fleet.port, "GET", "/v1/ready")
            assert status == 200
            assert doc["status"] == "ready"
            assert doc["workers_ready"] == 2
        finally:
            fleet.close()

    def test_worker_readiness_splits_from_liveness_on_drain(self):
        """Satellite pin: /v1/health stays 200 while draining (alive),
        /v1/ready flips to 503 (not serviceable)."""

        async def scenario():
            engine = SolverEngine(worker_id="w9", backend="per-node")
            server = SolverServer(engine, host="127.0.0.1", port=0)
            port = await server.start()
            client = _Client("127.0.0.1", port)
            try:
                h_before = await client.request("GET", "/v1/health")
                r_before = await client.request("GET", "/v1/ready")
                engine.begin_drain()
                h_after = await client.request("GET", "/v1/health")
                r_after = await client.request("GET", "/v1/ready")
            finally:
                await client.close()
                await server.shutdown()
            return h_before, r_before, h_after, r_after

        h_before, r_before, h_after, r_after = asyncio.run(scenario())
        assert h_before[0] == 200
        assert json.loads(h_before[1])["worker_id"] == "w9"
        assert json.loads(h_before[1])["backend"] == "per-node"
        assert r_before[0] == 200
        assert json.loads(r_before[1])["status"] == "ready"
        assert json.loads(r_before[1])["worker_id"] == "w9"
        assert h_after[0] == 200, "liveness survives draining"
        assert json.loads(h_after[1])["status"] == "draining"
        assert r_after[0] == 503, "readiness does not"
        assert json.loads(r_after[1])["status"] == "draining"


class TestFailover:
    def test_request_fails_over_when_owner_dies(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            cache_dir=str(tmp_path / "disk"))
        fleet.supervisor.restart_on_crash = False
        try:
            request, body = request_body(instance, seed=3)
            owner = shard_for_request(request, 2)
            status, doc = http(fleet.port, "POST", "/v1/solve", body)
            assert status == 200
            assert doc["served"]["worker_id"] == str(owner)
            fleet.supervisor.stop_worker(str(owner))
            status, doc = http(fleet.port, "POST", "/v1/solve", body)
            assert status == 200, "failover must keep the key available"
            assert doc["served"]["worker_id"] == str(1 - owner)
            assert fleet.router.stats["failovers"] >= 1
        finally:
            fleet.close()

    def test_supervisor_restarts_crashed_worker(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            cache_dir=str(tmp_path / "disk"))
        try:
            fleet.supervisor.stop_worker("1")
            restarted = fleet.supervisor.check()
            assert restarted == ["1"]
            endpoints = {e.worker_id: e for e in fleet.supervisor.endpoints()}
            assert endpoints["1"].alive
            assert endpoints["1"].restarts == 1
            # The revived worker serves its shard again.
            for seed in range(6):
                request, body = request_body(instance, seed=seed)
                if shard_for_request(request, 2) == 1:
                    status, doc = http(fleet.port, "POST", "/v1/solve", body)
                    assert status == 200
                    assert doc["served"]["worker_id"] == "1"
                    break
            else:  # pragma: no cover - sha256 would have to be degenerate
                pytest.fail("no probe key landed on shard 1")
        finally:
            fleet.close()


class TestRouterEdges:
    def test_malformed_body_gets_canonical_worker_400(self):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            status, doc = http(fleet.port, "POST", "/v1/solve", b"{nope")
            assert status == 400
            assert doc["error"]["code"] == "bad_request"
            assert fleet.router.stats["body_routed"] >= 1
        finally:
            fleet.close()

    def test_oversized_graph_is_413_at_router(self):
        fleet = start_fleet(workers=1, threaded=True)
        try:
            body = json.dumps({
                "schema": "v1",
                "graph": {"spec": "gnp:2000000,0.001"},
                "algorithm": "thm2",
            }).encode()
            status, doc = http(fleet.port, "POST", "/v1/solve", body)
            assert status == 413
        finally:
            fleet.close()

    def test_routing_cache_skips_reparse(self, instance):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            _, body = request_body(instance)
            for _ in range(3):
                http(fleet.port, "POST", "/v1/solve", body)
            stats = dict(fleet.router.stats)
        finally:
            fleet.close()
        assert stats["parse_routed"] == 1
        assert stats["routing_cache_hits"] == 2

    def test_algorithms_proxied(self):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            status, doc = http(fleet.port, "GET", "/v1/algorithms")
            assert status == 200
            names = {entry["name"] for entry in doc["algorithms"]}
            assert "thm2" in names
        finally:
            fleet.close()


class TestFleetMetrics:
    def test_json_aggregation_sums_workers(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True, memory_cache=8,
                            cache_dir=str(tmp_path / "disk"))
        try:
            for seed in range(4):
                _, body = request_body(instance, seed=seed)
                http(fleet.port, "POST", "/v1/solve", body)
                http(fleet.port, "POST", "/v1/solve", body)  # memory hit
            status, doc = http(fleet.port, "GET", "/v1/metrics")
        finally:
            fleet.close()
        assert status == 200
        assert doc["scope"] == "fleet"
        assert doc["workers_reporting"] == 2
        assert doc["requests"] == 8
        assert doc["executed"] == 4
        assert doc["memory_cache_hits"] == 4
        assert doc["requests"] == sum(
            w["requests"] for w in doc["workers"].values())
        assert doc["router"]["routed"] == 8
        assert doc["latency_approx"]["count"] == 8
        assert doc["latency_approx"]["p99_s"] >= doc["latency_approx"]["p50_s"]

    def test_prometheus_exposition(self, instance):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            _, body = request_body(instance)
            http(fleet.port, "POST", "/v1/solve", body)

            async def fetch():
                client = _Client("127.0.0.1", fleet.port)
                try:
                    return await client.request(
                        "GET", "/v1/metrics?format=prometheus")
                finally:
                    await client.close()

            status, payload = asyncio.run(fetch())
        finally:
            fleet.close()
        assert status == 200
        text = payload.decode()
        assert "# TYPE repro_fleet_requests_total counter" in text
        assert "repro_fleet_requests_total 1" in text
        assert 'repro_fleet_requests_total{worker="0"}' in text
        assert 'repro_fleet_requests_total{worker="1"}' in text
        assert "repro_fleet_request_latency_seconds_bucket" in text
        assert "repro_fleet_router_routed 1" in text


class TestAggregateUnit:
    """aggregate_snapshots on synthetic worker documents."""

    @staticmethod
    def _snap(worker_id, requests, buckets):
        return {
            "worker_id": worker_id,
            "requests": requests,
            "completed": requests,
            "coalesced": 0,
            "cache_hits": 0,
            "memory_cache_hits": 0,
            "executed": requests,
            "histograms": {
                "repro_service_request_latency_seconds": {
                    "kind": "histogram",
                    "help": "x",
                    "series": [{
                        "labels": {},
                        "buckets": buckets,
                        "sum": 1.0,
                        "count": buckets[-1][1],
                    }],
                },
            },
        }

    def test_counter_sum_and_histogram_merge(self):
        a = self._snap("0", 6, [["0.1", 4], ["1", 6], ["+Inf", 6]])
        b = self._snap("1", 2, [["0.1", 1], ["1", 2], ["+Inf", 2]])
        doc = aggregate_snapshots([a, b])
        assert doc["requests"] == 8
        assert doc["executed"] == 8
        merged = doc["histograms"][
            "repro_service_request_latency_seconds"]["series"][0]
        assert merged["buckets"] == [["0.1", 5], ["1", 8], ["+Inf", 8]]
        assert merged["count"] == 8
        # p50 falls in the first bucket (5 of 8 <= 0.1s).
        assert 0.0 < doc["latency_approx"]["p50_s"] <= 0.1
        assert 0.1 < doc["latency_approx"]["p99_s"] <= 1.0

    def test_render_prometheus_from_synthetic(self):
        a = self._snap("0", 3, [["0.1", 3], ["+Inf", 3]])
        text = render_fleet_prometheus([a], router={"routed": 3})
        assert "repro_fleet_requests_total 3" in text
        assert 'repro_fleet_request_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_fleet_router_routed 3" in text


class TestGraphPlane:
    """The graph registry through the router: shared store, ref routing,
    eviction broadcast."""

    def _register(self, fleet, instance):
        from repro.graphs import io as graph_io

        status, doc = http(fleet.port, "POST", "/v1/graphs",
                           graph_io.to_bytes(instance))
        assert status == 200
        return doc["graph_ref"]

    def test_register_then_solve_by_ref_on_any_worker(self, instance,
                                                      tmp_path):
        fleet = start_fleet(workers=3, threaded=True,
                            graph_store=str(tmp_path / "graphs"))
        try:
            ref = self._register(fleet, instance)
            assert ref == instance.fingerprint()
            request, body = request_body(instance)
            doc = json.loads(body)
            doc["graph"] = {"ref": ref}
            ref_body = json.dumps(doc).encode()
            s1, env1 = http(fleet.port, "POST", "/v1/solve", body)
            s2, env2 = http(fleet.port, "POST", "/v1/solve", ref_body)
            assert s1 == s2 == 200
            assert env1["report"] == env2["report"]
            # Ref and body forms of the same request share the shard.
            assert (env1["served"]["worker_id"]
                    == env2["served"]["worker_id"])
            assert fleet.router.stats["ref_routed"] >= 1
        finally:
            fleet.close()

    def test_describe_proxied(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            graph_store=str(tmp_path / "graphs"))
        try:
            ref = self._register(fleet, instance)
            status, info = http(fleet.port, "GET", f"/v1/graphs/{ref}")
            assert status == 200
            assert info["n"] == instance.n and info["m"] == instance.m
            status, _ = http(fleet.port, "GET", "/v1/graphs/" + "0" * 64)
            assert status == 404
        finally:
            fleet.close()

    def test_evict_broadcasts_to_all_workers(self, instance, tmp_path):
        fleet = start_fleet(workers=3, threaded=True,
                            graph_store=str(tmp_path / "graphs"))
        try:
            ref = self._register(fleet, instance)
            status, doc = http(fleet.port, "DELETE", f"/v1/graphs/{ref}")
            assert status == 200
            assert doc["evicted"] is True
            assert doc["workers_polled"] == 3
            # Every worker's store dropped it: a ref solve now 404s
            # regardless of which shard owns the key.
            request, body = request_body(instance)
            rdoc = json.loads(body)
            rdoc["graph"] = {"ref": ref}
            status, _ = http(fleet.port, "POST", "/v1/solve",
                             json.dumps(rdoc).encode())
            assert status == 404
        finally:
            fleet.close()

    def test_unknown_ref_solve_404_through_router(self, instance, tmp_path):
        fleet = start_fleet(workers=2, threaded=True,
                            graph_store=str(tmp_path / "graphs"))
        try:
            request, body = request_body(instance)
            doc = json.loads(body)
            doc["graph"] = {"ref": "0" * 64}
            status, _ = http(fleet.port, "POST", "/v1/solve",
                             json.dumps(doc).encode())
            assert status == 404
            # The bad ref still routed by its ref (no body-hash fallback).
            assert fleet.router.stats["ref_routed"] >= 1
            assert fleet.router.stats["body_routed"] == 0
        finally:
            fleet.close()
