"""Shard assignment: sha256-based, pinned, and hash()-independent.

The regression pins here are the fleet's placement contract: if they
ever move, restarted routers would shard keys differently than running
workers' caches expect, and cross-version fleets would split coalescing
for the same key.  They must never depend on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.api import SolveRequest
from repro.graphs import gnp, uniform_weights
from repro.service.fleet import routing_key, shard_for_key, shard_for_request

# (key, shards) -> expected placement, computed once from the spec
# (first 8 big-endian bytes of sha256(key) mod shards) and frozen.
PINNED = {
    ("", 2): 0, ("", 4): 0, ("", 8): 4, ("", 16): 4,
    ("a", 2): 0, ("a", 4): 2, ("a", 8): 2, ("a", 16): 10,
    ("deadbeef", 2): 1, ("deadbeef", 4): 1, ("deadbeef", 8): 1,
    ("deadbeef", 16): 1,
    ("8a2f6f9c6d5e4b3a2f1e0d9c8b7a6f5e4d3c2b1a0f9e8d7c6b5a4f3e2d1c0b9a",
     2): 0,
    ("8a2f6f9c6d5e4b3a2f1e0d9c8b7a6f5e4d3c2b1a0f9e8d7c6b5a4f3e2d1c0b9a",
     4): 0,
    ("8a2f6f9c6d5e4b3a2f1e0d9c8b7a6f5e4d3c2b1a0f9e8d7c6b5a4f3e2d1c0b9a",
     8): 0,
    ("8a2f6f9c6d5e4b3a2f1e0d9c8b7a6f5e4d3c2b1a0f9e8d7c6b5a4f3e2d1c0b9a",
     16): 8,
}


class TestShardForKey:
    def test_pinned_placements(self):
        for (key, shards), expected in PINNED.items():
            assert shard_for_key(key, shards) == expected, (key, shards)

    def test_single_shard_is_always_zero(self):
        for key in ("", "a", "anything-at-all"):
            assert shard_for_key(key, 1) == 0

    def test_matches_sha256_spec(self):
        key = "some-request-fingerprint"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        expected = int.from_bytes(digest[:8], "big") % 5
        assert shard_for_key(key, 5) == expected

    def test_never_python_hash(self):
        # Python hash() of a str is salted per process; if the shard
        # function ever used it, this equality could only hold by
        # coincidence for *every* probe key at once.
        probes = [f"probe-{i}" for i in range(64)]
        for key in probes:
            digest = hashlib.sha256(key.encode("utf-8")).digest()
            assert (shard_for_key(key, 16)
                    == int.from_bytes(digest[:8], "big") % 16)

    def test_range_and_distribution(self):
        shards = 8
        placements = [shard_for_key(f"k{i}", shards) for i in range(800)]
        assert set(placements) <= set(range(shards))
        # sha256 spreads: every shard owns some keys at this volume.
        assert set(placements) == set(range(shards))

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_key("x", 0)
        with pytest.raises(ValueError):
            shard_for_key("x", -3)


class TestShardForRequest:
    @pytest.fixture
    def request_(self):
        graph = uniform_weights(gnp(24, 0.15, seed=1), 1, 10, seed=2)
        return SolveRequest(graph=graph, algorithm="thm2", seed=7,
                            params={"eps": 0.5})

    def test_routing_key_is_request_key(self, request_):
        assert routing_key(request_) == request_.key()

    def test_pinned_request_placement(self, request_):
        # The full pipeline (graph fingerprint -> request key -> shard)
        # is deterministic; frozen from a reference run.
        assert request_.key() == (
            "b505646fcb7d669bc4bb2735eca7f7f2c7c6beff18ae88268e6f3f2609547fff"
        )
        assert shard_for_request(request_, 2) == 1
        assert shard_for_request(request_, 3) == 0
        assert shard_for_request(request_, 4) == 3

    def test_equal_requests_share_a_shard(self, request_):
        graph = uniform_weights(gnp(24, 0.15, seed=1), 1, 10, seed=2)
        twin = SolveRequest(graph=graph, algorithm="thm2", seed=7,
                            params={"eps": 0.5})
        for shards in (2, 3, 4, 7):
            assert (shard_for_request(request_, shards)
                    == shard_for_request(twin, shards))
