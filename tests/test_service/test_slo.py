"""Declarative SLO specs, verdicts, and the loadgen/gate integration."""

from __future__ import annotations

import json
import os

import pytest

from repro.service.slo import SLOSpec, load_slo_spec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestSpecParsing:
    def test_round_trip(self):
        spec = SLOSpec(name="x", p95_ms=100.0, max_error_rate=0.01)
        assert SLOSpec.from_doc(spec.to_doc()) == spec

    def test_to_doc_omits_unset_thresholds(self):
        doc = SLOSpec(name="x", p95_ms=100.0).to_doc()
        assert doc == {"schema": "v1", "name": "x", "p95_ms": 100.0}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO spec fields"):
            SLOSpec.from_doc({"schema": "v1", "p42_ms": 1})

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported SLO spec schema"):
            SLOSpec.from_doc({"schema": "v2"})

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            SLOSpec.from_doc({"schema": "v1", "p95_ms": -1})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"schema": "v1", "name": "f",
                                    "p50_ms": 10}))
        spec = load_slo_spec(str(path))
        assert spec.name == "f"
        assert spec.p50_ms == 10.0


class TestEvaluate:
    def test_holds_when_under_thresholds(self):
        spec = SLOSpec(p50_ms=100, p95_ms=500, p99_ms=1000,
                       max_error_rate=0.1, min_throughput_rps=1)
        report = spec.evaluate(latencies_s=[0.01] * 100, sent=100,
                               completed=100, throughput_rps=50.0)
        assert report.holds
        assert len(report.checks) == 5
        assert report.violations == []

    def test_violation_identifies_the_metric(self):
        spec = SLOSpec(p95_ms=5)
        report = spec.evaluate(latencies_s=[0.1] * 100, sent=100,
                               completed=100)
        assert not report.holds
        (violation,) = report.violations
        assert violation.metric == "p95_ms"
        assert violation.measured == pytest.approx(100.0)
        assert violation.required == 5.0

    def test_raw_latencies_take_precedence(self):
        spec = SLOSpec(p50_ms=100)
        report = spec.evaluate(latencies_s=[0.01] * 10, p50_s=9.0)
        assert report.holds

    def test_precomputed_percentiles_used_without_latencies(self):
        spec = SLOSpec(p50_ms=100)
        report = spec.evaluate(p50_s=0.05)
        assert report.holds
        report = spec.evaluate(p50_s=0.5)
        assert not report.holds

    def test_missing_measurement_fails_closed(self):
        report = SLOSpec(p99_ms=100).evaluate()
        assert not report.holds
        assert report.checks[0].measured == float("inf")

    def test_error_rate(self):
        spec = SLOSpec(max_error_rate=0.05)
        assert spec.evaluate(sent=100, completed=97).holds
        assert not spec.evaluate(sent=100, completed=90).holds
        # Zero sent requests means nothing was demonstrated: fail closed.
        assert not spec.evaluate(sent=0, completed=0).holds

    def test_throughput_floor(self):
        spec = SLOSpec(min_throughput_rps=10)
        assert spec.evaluate(throughput_rps=11.0).holds
        assert not spec.evaluate(throughput_rps=9.0).holds
        assert not spec.evaluate().holds

    def test_empty_spec_holds_vacuously(self):
        report = SLOSpec().evaluate(latencies_s=[1000.0])
        assert report.holds
        assert report.checks == []
        assert "vacuously" in report.render()

    def test_report_doc_shape(self):
        doc = SLOSpec(p50_ms=100).evaluate(latencies_s=[0.01]).to_doc()
        assert doc["spec"] == "default"
        assert doc["holds"] is True
        assert doc["checks"][0] == {"metric": "p50_ms", "comparator": "<=",
                                    "required": 100.0,
                                    "measured": pytest.approx(10.0),
                                    "holds": True}

    def test_render_marks_failures(self):
        text = SLOSpec(p50_ms=1).evaluate(latencies_s=[1.0]).render()
        assert "VIOLATED" in text
        assert "[FAIL]" in text


class TestEvaluateDoc:
    def _bench(self, **latency):
        return {
            "sent": 100, "completed": 100, "throughput_rps": 50.0,
            "latency": {"p50_s": 0.007, "p95_s": 0.012, "max_s": 0.07,
                        **latency},
        }

    def test_offline_gate_against_bench_doc(self):
        spec = SLOSpec(p50_ms=500, p95_ms=2000, max_error_rate=0.02,
                       min_throughput_rps=5)
        assert spec.evaluate_doc(self._bench()).holds

    def test_tightened_spec_fails_the_committed_baseline(self):
        assert not SLOSpec(p95_ms=5).evaluate_doc(self._bench()).holds

    def test_p99_falls_back_to_max_for_old_documents(self):
        report = SLOSpec(p99_ms=1000).evaluate_doc(self._bench())
        assert report.checks[0].measured == pytest.approx(70.0)

    def test_p99_used_when_present(self):
        report = SLOSpec(p99_ms=1000).evaluate_doc(
            self._bench(p99_s=0.03))
        assert report.checks[0].measured == pytest.approx(30.0)


class TestCommittedArtifacts:
    def test_committed_spec_parses(self):
        spec = load_slo_spec(os.path.join(REPO_ROOT, "benchmarks",
                                          "slo_spec.json"))
        assert spec.name == "service-tail-latency"
        assert spec.p95_ms is not None

    def test_committed_spec_holds_on_committed_baseline(self):
        bench_path = os.path.join(REPO_ROOT, "BENCH_service.json")
        if not os.path.exists(bench_path):
            pytest.skip("no committed BENCH_service.json")
        spec = load_slo_spec(os.path.join(REPO_ROOT, "benchmarks",
                                          "slo_spec.json"))
        with open(bench_path, encoding="utf-8") as fh:
            bench = json.load(fh)
        report = spec.evaluate_doc(bench)
        assert report.holds, report.render()


class TestLoadgenIntegration:
    def test_loadgen_embeds_slo_verdicts(self, tmp_path):
        from repro.service import build_request_pool, run_loadgen

        from .test_server import ServerThread

        pool = build_request_pool(
            specs=(("gnp:16,0.2", "unit"),), algorithms=("thm2",),
            seeds=(1,),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            {"schema": "v1", "name": "test", "p95_ms": 60_000,
             "max_error_rate": 0.5}))
        with ServerThread() as server:
            doc = run_loadgen(port=server.port, clients=2, duration_s=0.5,
                              out_path=None, pool=pool, verify=False,
                              slo=str(spec_path))
        assert doc["slo"]["spec"] == "test"
        assert doc["slo"]["holds"] is True
        metrics = {c["metric"] for c in doc["slo"]["checks"]}
        assert metrics == {"p95_ms", "error_rate"}

    def test_loadgen_rejects_bad_slo_type(self):
        from repro.service import run_loadgen

        with pytest.raises(TypeError, match="SLOSpec or a path"):
            run_loadgen(port=1, duration_s=0.1, out_path=None, slo=42)
