"""The delta plane over HTTP: ``POST /v1/graphs/<ref>/deltas``,
delta-form solves, and the incremental re-solve path.

Three contracts under test:

* Registering a delta yields a child ``graph_ref`` byte-identical to
  registering the edited graph from scratch, and the endpoint's error
  discrimination is exact (op-shape → 400, unknown parent → 404,
  state conflict → 409).
* A delta-form solve's report is byte-identical to a full solve of the
  equivalent from-scratch graph — whether the engine served it
  incrementally (weight-only × weight-oblivious, warm parent cache) or
  fell back to the full path — and the envelope says which
  (``served.solve_mode`` + ``served.dirty_frontier``).
* ``DELETE`` of a ref racing an in-flight solve defers physical
  eviction instead of yanking the arena: the solve completes, the ref
  404s immediately, and the blob disappears once the pin drops.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import solve
from repro.core import weighted_greedy_maxis
from repro.graphs import gnp, uniform_weights
from repro.graphs import io as graph_io
from repro.graphs.delta import GraphDelta, apply_delta

from .test_server import ServerThread, http


@pytest.fixture
def instance():
    return uniform_weights(gnp(24, 0.16, seed=5), 1, 12, seed=6)


def _register(port, graph):
    status, doc = http(port, "POST", "/v1/graphs", graph_io.to_bytes(graph))
    assert status == 200
    return doc["graph_ref"]


def _delta_solve_doc(parent, ops, *, algorithm="mis-luby", seed=5,
                     backend=None, params=None):
    doc = {
        "schema": "v2",
        "graph": {"delta": {"parent": parent, "ops": ops}},
        "algorithm": algorithm,
        "seed": seed,
    }
    if backend:
        doc["backend"] = backend
    if params:
        doc["params"] = params
    return doc


class TestDeltasEndpoint:
    def test_register_delta_round_trip(self, instance, tmp_path):
        v = instance.nodes[0]
        ops = [["set_weight", v, 99.0]]
        child_local = apply_delta(instance, GraphDelta.of(ops))
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            status, doc = http(srv.port, "POST",
                               f"/v1/graphs/{parent}/deltas",
                               json.dumps({"ops": ops}).encode())
            assert status == 200
            # Content addressing: the child ref is the fingerprint of
            # the edited graph built from scratch.
            assert doc["graph_ref"] == child_local.fingerprint()
            assert doc["parent"] == parent
            assert doc["ops"] == 1 and doc["weight_only"] is True
            assert doc["n"] == instance.n and doc["m"] == instance.m
            # The child is a first-class stored graph.
            status, info = http(srv.port, "GET",
                                f"/v1/graphs/{doc['graph_ref']}")
            assert status == 200 and info["n"] == instance.n

    def test_bare_ops_list_body_accepted(self, instance, tmp_path):
        v = instance.nodes[0]
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            status, doc = http(srv.port, "POST",
                               f"/v1/graphs/{parent}/deltas",
                               json.dumps([["set_weight", v, 3.0]]).encode())
            assert status == 200
            assert doc["weight_only"] is True

    def test_unknown_parent_404(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            status, err = http(srv.port, "POST",
                               "/v1/graphs/" + "0" * 64 + "/deltas",
                               json.dumps({"ops": [["set_weight", 0, 1.0]]}
                                          ).encode())
            assert status == 404
            assert err["error"]["code"] == "not_found"

    def test_state_conflict_409(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            status, err = http(srv.port, "POST",
                               f"/v1/graphs/{parent}/deltas",
                               json.dumps({"ops": [["remove_node", 10**9]]}
                                          ).encode())
            assert status == 409
            assert err["error"]["code"] == "conflict"
            # The detail pins which edit script was rejected.
            assert len(err["error"]["detail"]) == 64

    def test_malformed_ops_400(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            for body in (b"not json", b'{"ops": [["warp_node", 1]]}',
                         b'{"ops": [["set_weight", 1]]}'):
                status, err = http(srv.port, "POST",
                                   f"/v1/graphs/{parent}/deltas", body)
                assert status == 400, body
                assert err["error"]["code"] == "bad_request"

    def test_get_on_deltas_path_405(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            status, err = http(srv.port, "GET",
                               f"/v1/graphs/{parent}/deltas")
            assert status == 405
            assert err["error"]["code"] == "method_not_allowed"


class TestSolveModeGoldens:
    """Golden decisions for ``served.solve_mode`` — and byte identity
    of the report regardless of which path produced it."""

    @pytest.mark.parametrize("backend", ["per-node", "columnar"])
    def test_weight_only_delta_serves_incrementally(self, instance,
                                                    tmp_path, backend):
        v = instance.nodes[0]
        ops = [["set_weight", v, 50.0]]
        child = apply_delta(instance, GraphDelta.of(ops))
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            parent = _register(srv.port, instance)
            # Warm the parent's report into the memory tier.
            warm = {"schema": "v2", "graph": {"ref": parent},
                    "algorithm": "mis-luby", "seed": 5, "backend": backend}
            status, _ = http(srv.port, "POST", "/v1/solve",
                             json.dumps(warm).encode())
            assert status == 200
            doc = _delta_solve_doc(parent, ops, backend=backend)
            status, env = http(srv.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 200
            assert env["served"]["solve_mode"] == "incremental"
            assert env["served"]["cached"] is True
            assert env["served"]["dirty_frontier"] >= 0
            assert env["schema"] == "v2" and "deprecated" not in env
            # The acceptance pin: the derived report is byte-identical
            # to a full fixed-seed solve of the from-scratch child.
            local = solve(child, "mis-luby", seed=5, backend=backend)
            assert json.dumps(env["report"], sort_keys=True,
                              separators=(",", ":")) == local.to_json()

    def test_topology_delta_takes_full_path(self, instance, tmp_path):
        nodes = instance.nodes
        pair = next((u, v) for u in nodes for v in nodes
                    if u < v and v not in instance.neighbors(u))
        ops = [["add_edge", *pair]]
        child = apply_delta(instance, GraphDelta.of(ops))
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            parent = _register(srv.port, instance)
            warm = {"schema": "v2", "graph": {"ref": parent},
                    "algorithm": "mis-luby", "seed": 5}
            http(srv.port, "POST", "/v1/solve", json.dumps(warm).encode())
            status, env = http(srv.port, "POST", "/v1/solve",
                               json.dumps(_delta_solve_doc(parent, ops)
                                          ).encode())
            assert status == 200
            assert env["served"]["solve_mode"] == "full"
            assert env["served"]["dirty_frontier"] >= 0
            local = solve(child, "mis-luby", seed=5)
            assert json.dumps(env["report"], sort_keys=True,
                              separators=(",", ":")) == local.to_json()

    def test_weight_sensitive_algorithm_takes_full_path(self, instance,
                                                        tmp_path):
        v = instance.nodes[0]
        ops = [["set_weight", v, 50.0]]
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            parent = _register(srv.port, instance)
            warm = {"schema": "v2", "graph": {"ref": parent},
                    "algorithm": "thm2", "seed": 5,
                    "params": {"eps": 0.5}}
            http(srv.port, "POST", "/v1/solve", json.dumps(warm).encode())
            doc = _delta_solve_doc(parent, ops, algorithm="thm2",
                                   params={"eps": 0.5})
            status, env = http(srv.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 200
            # thm2 reads weights: deriving from the parent's set would
            # be unsound, so the engine must re-solve in full.
            assert env["served"]["solve_mode"] == "full"

    def test_cold_parent_cache_falls_back_to_full(self, instance, tmp_path):
        v = instance.nodes[0]
        ops = [["set_weight", v, 50.0]]
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            parent = _register(srv.port, instance)
            # No warm-up solve: nothing cached for the parent.
            status, env = http(srv.port, "POST", "/v1/solve",
                               json.dumps(_delta_solve_doc(parent, ops)
                                          ).encode())
            assert status == 200
            assert env["served"]["solve_mode"] == "full"

    def test_unknown_delta_parent_404(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            doc = _delta_solve_doc("0" * 64, [["set_weight", 0, 1.0]])
            status, err = http(srv.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 404
            assert err["error"]["code"] == "not_found"

    def test_conflicting_delta_solve_409(self, instance, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            parent = _register(srv.port, instance)
            doc = _delta_solve_doc(parent, [["remove_node", 10**9]])
            status, err = http(srv.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 409
            assert err["error"]["code"] == "conflict"

    def test_incremental_counters_in_metrics(self, instance, tmp_path):
        v = instance.nodes[0]
        ops = [["set_weight", v, 50.0]]
        with ServerThread(graph_store=str(tmp_path),
                          memory_cache=32) as srv:
            parent = _register(srv.port, instance)
            warm = {"schema": "v2", "graph": {"ref": parent},
                    "algorithm": "mis-luby", "seed": 5}
            http(srv.port, "POST", "/v1/solve", json.dumps(warm).encode())
            http(srv.port, "POST", "/v1/solve",
                 json.dumps(_delta_solve_doc(parent, ops)).encode())
            # Topology edit: counted as a fallback, solved in full.
            http(srv.port, "POST", "/v1/solve",
                 json.dumps(_delta_solve_doc(
                     parent, [["add_node", 10**6, 1.0]])).encode())
            status, metrics = http(srv.port, "GET", "/v1/metrics")
            assert status == 200
            assert metrics["incremental_served"] == 1
            assert metrics["incremental_fallback"] == 1


class TestEvictionRace:
    def test_delete_during_inflight_solve_defers_physical_eviction(
            self, instance, tmp_path):
        started = threading.Event()
        release = threading.Event()

        def slow(graph, seed=None, **params):
            started.set()
            release.wait(timeout=10.0)
            return weighted_greedy_maxis(graph, seed=seed)

        with ServerThread(graph_store=str(tmp_path),
                          registry={"slow": slow}) as srv:
            ref = _register(srv.port, instance)
            doc = {"schema": "v2", "graph": {"ref": ref},
                   "algorithm": "slow", "seed": 1}
            result = {}

            def solve_thread():
                result["solve"] = http(srv.port, "POST", "/v1/solve",
                                       json.dumps(doc).encode())

            worker = threading.Thread(target=solve_thread)
            worker.start()
            try:
                assert started.wait(timeout=10.0), "solve never started"
                # DELETE races the pinned solve: logical eviction is
                # immediate, physical removal deferred.
                status, out = http(srv.port, "DELETE", f"/v1/graphs/{ref}")
                assert status == 200
                assert out["evicted"] is True
                assert out.get("deferred") is True
                status, _ = http(srv.port, "GET", f"/v1/graphs/{ref}")
                assert status == 404, "logically gone immediately"
            finally:
                release.set()
                worker.join(timeout=15.0)
            status, env = result["solve"]
            assert status == 200 and env["report"]["ok"], (
                "the in-flight solve must complete against the pinned "
                "arena, not crash on a vanished blob")
            # Physical removal happens at unpin; poll briefly for it.
            blob = tmp_path / f"{ref}.rwg"
            deadline = time.time() + 10.0
            while blob.exists() and time.time() < deadline:
                time.sleep(0.05)
            assert not blob.exists()
            status, _ = http(srv.port, "GET", f"/v1/graphs/{ref}")
            assert status == 404
