"""Open-loop arrival schedules: deterministic, rate-true, duration-capped."""

from __future__ import annotations

import pytest

from repro.service import generate_arrivals


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        for process in ("poisson", "bursty", "uniform"):
            a = generate_arrivals(process=process, rate=80.0, duration_s=2.0,
                                  seed=42)
            b = generate_arrivals(process=process, rate=80.0, duration_s=2.0,
                                  seed=42)
            assert a == b, process

    def test_different_seed_different_schedule(self):
        a = generate_arrivals(process="poisson", rate=80.0, duration_s=2.0,
                              seed=1)
        b = generate_arrivals(process="poisson", rate=80.0, duration_s=2.0,
                              seed=2)
        assert a != b

    def test_no_global_rng_coupling(self):
        import random

        random.seed(12345)
        a = generate_arrivals(process="poisson", rate=50.0, duration_s=1.0,
                              seed=9)
        random.seed(99999)
        b = generate_arrivals(process="poisson", rate=50.0, duration_s=1.0,
                              seed=9)
        assert a == b


class TestShape:
    def test_duration_cap(self):
        for process in ("poisson", "bursty", "uniform"):
            arrivals = generate_arrivals(process=process, rate=200.0,
                                         duration_s=1.5, seed=3)
            assert arrivals, process
            assert all(0.0 < t < 1.5 for t in arrivals), process

    def test_sorted_offsets(self):
        for process in ("poisson", "bursty", "uniform"):
            arrivals = generate_arrivals(process=process, rate=100.0,
                                         duration_s=2.0, seed=5)
            assert arrivals == sorted(arrivals), process

    def test_poisson_mean_rate(self):
        arrivals = generate_arrivals(process="poisson", rate=100.0,
                                     duration_s=20.0, seed=0)
        # 2000 expected, sd ~45; a 4-sigma band keeps this deterministic
        # test meaningful without being flaky across seeds.
        assert 1800 <= len(arrivals) <= 2200

    def test_uniform_spacing(self):
        arrivals = generate_arrivals(process="uniform", rate=10.0,
                                     duration_s=1.0)
        assert len(arrivals) in (9, 10)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(abs(g - 0.1) < 1e-9 for g in gaps)

    def test_bursty_emits_whole_bursts_at_mean_rate(self):
        arrivals = generate_arrivals(process="bursty", rate=100.0,
                                     duration_s=20.0, seed=7, burst_size=8)
        assert len(arrivals) % 8 == 0
        assert 1300 <= len(arrivals) <= 2700  # mean 2000, heavier variance
        # Arrivals inside one burst are simultaneous.
        first_epoch = arrivals[0]
        assert arrivals[:8] == [first_epoch] * 8


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            generate_arrivals(process="poisson", rate=0.0, duration_s=1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            generate_arrivals(process="poisson", rate=10.0, duration_s=0.0)

    def test_rejects_bad_burst_size(self):
        with pytest.raises(ValueError):
            generate_arrivals(process="bursty", rate=10.0, duration_s=1.0,
                              burst_size=0)

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError):
            generate_arrivals(process="fractal", rate=10.0, duration_s=1.0)
