"""Schema v2 and the v1 compatibility shim.

The redesign's promise: v2 is a *vocabulary* change, not a semantic
one.  A v1-shaped body parses through the shim (with a deprecation
marker), produces the byte-identical request key, shares cache entries
and coalescing with its v2 twin, and yields the same report.  Schema
v2's tagged graph union (``inline`` / ``ref`` / ``delta``) must carry
exactly one tag.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    SCHEMA_V1,
    SCHEMA_VERSION,
    SchemaError,
    SolveRequest,
    delta_route_key_from_doc,
)
from repro.graphs import gnp, uniform_weights
from repro.graphs.delta import GraphDelta, apply_delta
from repro.graphs.store import GraphRef, GraphStore

from .test_server import ServerThread, http


@pytest.fixture
def instance():
    return uniform_weights(gnp(20, 0.18, seed=3), 1, 10, seed=4)


def _inline_graph_doc(graph):
    from repro.graphs import io as graph_io

    return graph_io.to_doc(graph)


def _v1_doc(g, **over):
    doc = {"graph": _inline_graph_doc(g), "algorithm": "thm2",
           "seed": 3, "params": {"eps": 0.5}}
    doc.update(over)
    return doc


def _v2_doc(g, **over):
    doc = {"schema": "v2", "graph": {"inline": _inline_graph_doc(g)},
           "algorithm": "thm2", "seed": 3, "params": {"eps": 0.5}}
    doc.update(over)
    return doc


class TestV2Parsing:
    def test_inline_form(self, instance):
        req = SolveRequest.from_doc(_v2_doc(instance))
        assert req.schema_version == SCHEMA_VERSION
        assert req.graph.fingerprint() == instance.fingerprint()
        assert req.delta is None

    def test_ref_form(self, instance, tmp_path):
        store = GraphStore(tmp_path)
        ref = store.put(instance)
        doc = _v2_doc(instance, graph={"ref": ref.ref})
        req = SolveRequest.from_doc(doc, store=store)
        assert isinstance(req.graph, GraphRef)
        assert req.key() == SolveRequest.from_doc(_v2_doc(instance)).key()
        store.close()

    def test_delta_form_materializes_child(self, instance, tmp_path):
        store = GraphStore(tmp_path)
        ref = store.put(instance)
        v = instance.nodes[0]
        ops = [["set_weight", v, 42.0]]
        doc = _v2_doc(instance,
                      graph={"delta": {"parent": ref.ref, "ops": ops}})
        req = SolveRequest.from_doc(doc, store=store)
        child = apply_delta(instance, GraphDelta.of(ops))
        assert req.graph.fingerprint() == child.fingerprint()
        assert req.delta is not None
        assert req.delta.parent == ref.ref
        assert req.delta.weight_only is True
        assert req.delta.touched == (v,)
        # The delta never leaks into the key: identical to solving the
        # edited graph sent whole.
        assert req.key() == SolveRequest.from_doc(_v2_doc(child)).key()
        store.close()

    def test_union_requires_exactly_one_tag(self, instance, tmp_path):
        store = GraphStore(tmp_path)
        ref = store.put(instance)
        for graph in ({}, {"spec": "gnp:8,0.2"},
                      {"inline": _inline_graph_doc(instance),
                       "ref": ref.ref}):
            with pytest.raises(SchemaError, match="exactly one"):
                SolveRequest.from_doc(_v2_doc(instance, graph=graph),
                                      store=store)
        store.close()

    def test_unsupported_schema_rejected(self, instance):
        with pytest.raises(SchemaError, match="unsupported schema"):
            SolveRequest.from_doc(_v2_doc(instance, schema="v3"))

    def test_v2_round_trips(self, instance):
        req = SolveRequest.from_doc(_v2_doc(instance))
        again = SolveRequest.from_doc(req.to_doc())
        assert again.key() == req.key()
        assert again.to_doc() == req.to_doc()


class TestV1Shim:
    def test_missing_schema_parses_as_v1_with_deprecation(self, instance):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            req = SolveRequest.from_doc(_v1_doc(instance))
        assert req.schema_version == SCHEMA_V1
        assert req.graph.fingerprint() == instance.fingerprint()

    def test_explicit_v1_schema_also_shimmed(self, instance):
        with pytest.warns(DeprecationWarning):
            req = SolveRequest.from_doc(_v1_doc(instance, schema="v1"))
        assert req.schema_version == SCHEMA_V1

    def test_request_keys_byte_identical_across_schemas(self, instance):
        """The shim's load-bearing promise: same computation, same key —
        so v1 and v2 callers share cache entries and coalesce."""
        with pytest.warns(DeprecationWarning):
            v1 = SolveRequest.from_doc(_v1_doc(instance))
        v2 = SolveRequest.from_doc(_v2_doc(instance))
        assert v1.key() == v2.key()

    def test_v1_ref_shape_keys_like_v2_ref(self, instance, tmp_path):
        store = GraphStore(tmp_path)
        ref = store.put(instance)
        with pytest.warns(DeprecationWarning):
            v1 = SolveRequest.from_doc(
                _v1_doc(instance, graph={"graph_ref": ref.ref}),
                store=store)
        v2 = SolveRequest.from_doc(
            _v2_doc(instance, graph={"ref": ref.ref}), store=store)
        assert v1.key() == v2.key()
        store.close()

    def test_v1_round_trips_in_legacy_shapes(self, instance):
        with pytest.warns(DeprecationWarning):
            req = SolveRequest.from_doc(_v1_doc(instance))
        doc = req.to_doc()
        assert doc["schema"] == SCHEMA_V1
        # Legacy shape: bare inline doc, not the tagged union.
        assert "nodes" in doc["graph"] and "inline" not in doc["graph"]
        with pytest.warns(DeprecationWarning):
            again = SolveRequest.from_doc(doc)
        assert again.key() == req.key()


class TestDeltaRouteKey:
    def test_delta_doc_routes_by_parent_key(self, instance, tmp_path):
        store = GraphStore(tmp_path)
        ref = store.put(instance)
        doc = _v2_doc(instance, graph={
            "delta": {"parent": ref.ref, "ops": [["set_weight", 0, 1.0]]}})
        route_key = delta_route_key_from_doc(doc)
        # The parent-keyed stand-in: the same hash a ref/inline solve of
        # the *parent* would route by, so delta solves land on the
        # worker whose memory tier holds the parent's report.
        parent_req = SolveRequest.from_doc(
            _v2_doc(instance, graph={"ref": ref.ref}), store=store)
        assert route_key == parent_req.key()
        store.close()

    def test_non_delta_docs_have_no_route_key(self, instance):
        assert delta_route_key_from_doc(_v2_doc(instance)) is None
        assert delta_route_key_from_doc(_v1_doc(instance)) is None
        assert delta_route_key_from_doc("nonsense") is None


class TestServedEnvelope:
    def test_v1_body_served_with_deprecation_marker(self, instance):
        body_v1 = json.dumps(_v1_doc(instance)).encode()
        body_v2 = json.dumps(_v2_doc(instance)).encode()
        with ServerThread(memory_cache=16) as srv:
            s1, env1 = http(srv.port, "POST", "/v1/solve", body_v1)
            s2, env2 = http(srv.port, "POST", "/v1/solve", body_v2)
            assert s1 == s2 == 200
            assert env1["schema"] == SCHEMA_V1
            assert env1["deprecated"] is True
            assert env2["schema"] == SCHEMA_VERSION
            assert "deprecated" not in env2
            # Identical reports, and the v2 request hit the cache entry
            # the v1 request populated: the keys really are identical.
            assert env1["report"] == env2["report"]
            assert env2["served"]["cached"] is True
