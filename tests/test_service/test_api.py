"""The public facade: the v2 request / v1 report contract and repro.solve."""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import (
    SCHEMA_VERSION,
    SchemaError,
    SolveError,
    SolveReport,
    SolveRequest,
    describe_algorithms,
    graph_from_doc,
    solve,
    sweep,
)
from repro.graphs import gnp, uniform_weights


@pytest.fixture
def instance():
    return uniform_weights(gnp(30, 0.12, seed=3), 1, 20, seed=4)


# --------------------------------------------------------------------- #
# the wire contract
# --------------------------------------------------------------------- #

class TestSolveRequest:
    def test_round_trips_through_json(self, instance):
        req = SolveRequest(graph=instance, algorithm="thm2", seed=7,
                           params={"eps": 0.25}, timeout_s=9.0, label="x")
        back = SolveRequest.from_json(req.to_json())
        assert back.algorithm == "thm2"
        assert back.seed == 7
        assert back.params == {"eps": 0.25}
        assert back.timeout_s == 9.0
        assert back.label == "x"
        assert back.graph.fingerprint() == instance.fingerprint()

    def test_key_ignores_serving_hints(self, instance):
        a = SolveRequest(graph=instance, algorithm="thm2", seed=7)
        b = SolveRequest(graph=instance, algorithm="thm2", seed=7,
                         timeout_s=1.0, label="other")
        assert a.key() == b.key()

    def test_key_depends_on_graph_content(self, instance):
        other = uniform_weights(gnp(30, 0.12, seed=5), 1, 20, seed=6)
        a = SolveRequest(graph=instance, algorithm="thm2", seed=7)
        b = SolveRequest(graph=other, algorithm="thm2", seed=7)
        assert a.key() != b.key()

    def test_spec_graph_decodes_server_side(self):
        doc = {"schema": SCHEMA_VERSION,
               "graph": {"inline": {"spec": "gnp:20,0.2",
                                    "weights": "uniform:1,9", "seed": 5}},
               "algorithm": "thm1"}
        req = SolveRequest.from_doc(doc)
        assert req.graph.n == 20
        assert all(1 <= req.graph.weight(v) <= 9 for v in req.graph.nodes)

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(schema="v9"), "unsupported schema"),
        (lambda d: d.pop("graph"), "missing the graph"),
        (lambda d: d.pop("algorithm"), "missing the algorithm"),
        (lambda d: d.update(seed=True), "seed must be an int"),
        (lambda d: d.update(seed="7"), "seed must be an int"),
        (lambda d: d.update(params=[1]), "params must be an object"),
        (lambda d: d.update(timeout_s=-1), "timeout_s must be positive"),
        (lambda d: d.update(timeout_s="soon"), "timeout_s must be a number"),
        (lambda d: d.update(graph={"inline": {"spec": "nosuch:3"}}),
         "unknown graph kind"),
        (lambda d: d.update(graph={"inline": {"weird": 1}}),
         "nodes/edges .* or a spec"),
        (lambda d: d.update(graph={"weird": 1}),
         "exactly one of inline/ref/delta"),
        (lambda d: d.update(graph={"ref": "a" * 64, "inline": {}}),
         "exactly one of inline/ref/delta"),
    ])
    def test_bad_documents_raise_schema_error(self, instance, mutate, match):
        doc = SolveRequest(graph=instance, algorithm="thm2").to_doc()
        mutate(doc)
        with pytest.raises(SchemaError, match=match):
            SolveRequest.from_doc(doc)

    def test_invalid_json_raises_schema_error(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            SolveRequest.from_json("{nope")

    def test_graph_from_doc_rejects_non_object(self):
        with pytest.raises(SchemaError, match="must be an object"):
            graph_from_doc([1, 2, 3])


class TestSolveReport:
    def test_round_trips_through_json(self, instance):
        report = solve(instance, "thm2", seed=7, eps=0.5)
        back = SolveReport.from_json(report.to_json())
        assert back == report

    def test_serialization_is_canonical(self, instance):
        report = solve(instance, "thm2", seed=7, eps=0.5)
        blob = report.to_json()
        assert blob == json.dumps(json.loads(blob), sort_keys=True,
                                  separators=(",", ":"))

    def test_rejects_wrong_schema(self):
        with pytest.raises(SchemaError, match="unsupported report schema"):
            SolveReport.from_doc({"schema": "v0", "algorithm": "x",
                                  "seed": 0, "ok": True})


# --------------------------------------------------------------------- #
# solve / sweep facade
# --------------------------------------------------------------------- #

class TestSolve:
    def test_fixed_seed_is_reproducible_bytes(self, instance):
        a = solve(instance, "thm2", seed=7, eps=0.5)
        b = solve(instance, "thm2", seed=7, eps=0.5)
        assert a.to_json() == b.to_json()

    def test_report_matches_direct_registry_call(self, instance):
        from repro.registry import algorithm_registry

        report = solve(instance, "thm2", seed=7, eps=0.5)
        result = algorithm_registry()["thm2"](instance, seed=7, eps=0.5)
        assert report.independent_set == tuple(sorted(result.independent_set))
        assert report.rounds == result.rounds
        assert report.ok

    def test_guarantee_metadata_survives_to_report(self, instance):
        report = solve(instance, "thm2", seed=7, eps=0.5)
        assert report.metadata["guarantee_factor"] > 0
        assert report.metadata["theorem"] == 2

    def test_report_certifies(self, instance):
        from repro.core.verify import certify_result

        report = solve(instance, "thm2", seed=7, eps=0.5)
        assert certify_result(instance, report).holds

    def test_unknown_algorithm_raises(self, instance):
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve(instance, "nosuch")

    def test_failure_raises_solve_error_with_report(self, instance):
        with pytest.raises(SolveError) as info:
            solve(instance, "thm2", seed=7, eps=-2.0)
        assert info.value.report.ok is False
        assert info.value.report.error

    def test_failure_returned_when_not_raising(self, instance):
        report = solve(instance, "thm2", seed=7, eps=-2.0,
                       raise_on_error=False)
        assert report.ok is False

    def test_cache_round_trip_preserves_bytes(self, instance, tmp_path):
        cold = solve(instance, "thm2", seed=7, cache_dir=str(tmp_path))
        warm = solve(instance, "thm2", seed=7, cache_dir=str(tmp_path))
        assert cold.to_json() == warm.to_json()


class TestSweep:
    def test_derived_seeds_match_single_solves(self, instance):
        reports = sweep(instance, "thm2", seeds=3, master_seed=5, eps=0.5)
        assert len(reports) == 3
        for report in reports:
            again = solve(instance, "thm2", seed=report.seed, eps=0.5)
            assert report.to_json() == again.to_json()

    def test_seed_count_validated(self, instance):
        with pytest.raises(ValueError, match="seeds must be >= 1"):
            sweep(instance, "thm2", seeds=0)


# --------------------------------------------------------------------- #
# blessed root surface + deprecation shims
# --------------------------------------------------------------------- #

class TestPublicSurface:
    def test_root_exports(self):
        assert repro.solve is solve
        assert repro.sweep is sweep
        assert repro.SolveRequest is SolveRequest
        assert repro.SolveReport is SolveReport
        assert callable(repro.algorithm_registry)

    def test_registry_names_are_stable(self):
        names = set(repro.algorithm_registry())
        assert {"thm1", "thm2", "thm3", "thm5", "thm8", "thm9",
                "ranking", "bar-yehuda", "weighted-greedy",
                "mis-luby", "mis-ghaffari", "mis-det"} <= names

    def test_batch_registry_alias_warns(self):
        from repro.simulator import batch

        with pytest.warns(DeprecationWarning, match="repro.registry"):
            registry = batch.algorithm_registry
        assert set(registry()) == set(repro.algorithm_registry())

    def test_describe_algorithms_lists_eps(self):
        entries = {e["name"]: e for e in describe_algorithms()}
        thm2 = entries["thm2"]
        assert {"name": "eps", "default": 0.5} in thm2["params"]
        assert entries["mis-luby"]["accepts_extra_params"]
