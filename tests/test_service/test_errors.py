"""The unified error taxonomy: one envelope, stable codes, real headers.

Worker and router errors are deliberately indistinguishable on the
wire: ``{"error": {"code", "message", "detail"}}`` with one stable
string code per status, and 405 responses carrying a real ``Allow``
header.  These tests pin the envelope at the unit level and then over
live sockets against both the single server and the sharded router.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import SCHEMA_VERSION, SolveRequest
from repro.graphs import gnp, uniform_weights
from repro.service.errors import (
    ERROR_CODES,
    HEADERS_KEY,
    HTTP_REASONS,
    error_doc,
    pop_headers,
)
from repro.service.fleet.saturation import start_fleet

from .test_server import ServerThread, http


@pytest.fixture
def instance():
    return uniform_weights(gnp(16, 0.2, seed=1), 1, 8, seed=2)


def raw_request(port, request_bytes):
    """One raw HTTP exchange; returns (status, headers_dict, body)."""

    async def go():
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request_bytes)
        await writer.drain()
        status_line = await reader.readline()
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0))
        if length:
            body = await reader.readexactly(length)
        writer.close()
        await writer.wait_closed()
        return int(status_line.split()[1]), headers, body

    return asyncio.run(go())


class TestTaxonomyUnit:
    def test_every_code_is_a_stable_string(self):
        assert set(ERROR_CODES) == {400, 404, 405, 409, 413, 429,
                                    500, 502, 503, 504}
        assert all(code.isidentifier() for code in ERROR_CODES.values())
        assert set(ERROR_CODES) <= set(HTTP_REASONS)

    def test_error_doc_envelope(self):
        status, doc = error_doc(404, "no such thing", detail="abc123")
        assert status == 404
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["error"] == {"code": "not_found",
                                "message": "no such thing",
                                "detail": "abc123"}

    def test_allow_travels_in_private_key_and_pops_clean(self):
        _, doc = error_doc(405, "use POST", allow="POST")
        assert doc[HEADERS_KEY] == {"Allow": "POST"}
        headers = pop_headers(doc)
        assert headers == {"Allow": "POST"}
        assert HEADERS_KEY not in doc, "popped before serialization"
        assert pop_headers(doc) == {}
        assert pop_headers("not a dict") == {}

    def test_unknown_status_falls_back_to_numeric_code(self):
        _, doc = error_doc(418, "teapot")
        assert doc["error"]["code"] == "418"


class TestServerTaxonomy:
    @pytest.mark.parametrize("method,path,body,status,code", [
        ("POST", "/v1/solve", b"{nope", 400, "bad_request"),
        ("GET", "/v1/nowhere", b"", 404, "not_found"),
        ("GET", "/v1/solve", b"", 405, "method_not_allowed"),
        ("DELETE", "/v1/health", b"", 405, "method_not_allowed"),
    ])
    def test_status_to_code_mapping(self, method, path, body, status, code):
        with ServerThread() as srv:
            got_status, doc = http(srv.port, method, path, body)
        assert got_status == status
        assert doc["error"]["code"] == code
        assert doc["schema"] == SCHEMA_VERSION
        assert "message" in doc["error"] and "detail" in doc["error"]

    def test_404_detail_carries_the_offending_ref(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            _, doc = http(srv.port, "GET", "/v1/graphs/" + "e" * 64)
        assert doc["error"]["code"] == "not_found"
        assert doc["error"]["detail"] == "e" * 64

    def test_405_sends_allow_header(self):
        with ServerThread() as srv:
            status, headers, body = raw_request(
                srv.port,
                b"GET /v1/solve HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n")
        assert status == 405
        assert headers["allow"] == "POST"
        assert json.loads(body)["error"]["code"] == "method_not_allowed"

    def test_graphs_405_allows_get_head_delete(self, tmp_path):
        with ServerThread(graph_store=str(tmp_path)) as srv:
            status, headers, _ = raw_request(
                srv.port,
                b"PUT /v1/graphs/" + b"a" * 64 + b" HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 0\r\n"
                b"Connection: close\r\n\r\n")
        assert status == 405
        assert headers["allow"] == "GET, HEAD, DELETE"

    def test_queue_full_is_429(self, instance):
        # Covered behaviorally in test_engine; here we only pin the
        # wire code for the taxonomy.
        assert ERROR_CODES[429] == "queue_full"

    def test_deadline_is_504(self):
        assert ERROR_CODES[504] == "deadline_exceeded"


class TestRouterTaxonomy:
    def test_router_errors_match_worker_envelope(self):
        fleet = start_fleet(workers=2, threaded=True)
        try:
            status, doc = http(fleet.port, "GET", "/v1/nowhere")
            assert status == 404
            assert doc["error"]["code"] == "not_found"
            status, doc = http(fleet.port, "GET", "/v1/solve")
            assert status == 405
            assert doc["error"]["code"] == "method_not_allowed"
        finally:
            fleet.close()

    def test_router_405_sends_allow_header(self):
        fleet = start_fleet(workers=1, threaded=True)
        try:
            status, headers, body = raw_request(
                fleet.port,
                b"GET /v1/solve HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n")
            assert status == 405
            assert headers["allow"] == "POST"
            assert json.loads(body)["error"]["code"] == "method_not_allowed"
        finally:
            fleet.close()

    def test_worker_error_passes_through_unchanged(self, instance):
        """A 404 originating on a worker reaches the client in the same
        envelope the router itself emits — indistinguishable origins."""
        fleet = start_fleet(workers=2, threaded=True)
        try:
            req = SolveRequest(graph=instance, algorithm="thm2", seed=1,
                               params={"eps": 0.5})
            doc = req.to_doc()
            doc["graph"] = {"ref": "f" * 64}
            status, err = http(fleet.port, "POST", "/v1/solve",
                               json.dumps(doc).encode())
            assert status == 404
            assert err["error"]["code"] == "not_found"
            assert err["schema"] == SCHEMA_VERSION
        finally:
            fleet.close()
