"""Tests for the BFS tree / convergecast / flood primitives."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    bfs_distances,
    complete,
    cycle,
    disjoint_union,
    gnp,
    grid_2d,
    path,
    star,
    uniform_weights,
)
from repro.primitives import AGGREGATIONS, bfs_tree, flood_value


def connected_gnp(n, p, seed):
    from repro.graphs import connected_components

    g = gnp(n, p, seed=seed)
    comp = max(connected_components(g), key=len)
    sub, _ = g.induced_subgraph(comp).relabeled()
    return sub


class TestBFSTree:
    def test_levels_are_bfs_distances(self):
        g = connected_gnp(60, 0.1, seed=1)
        res = bfs_tree(g, 0)
        assert res.level == bfs_distances(g, 0)

    def test_parents_form_tree_toward_root(self):
        g = grid_2d(5, 5)
        res = bfs_tree(g, 0)
        for v, p in res.parent.items():
            assert res.level[p] == res.level[v] - 1
            assert g.has_edge(v, p)
        assert len(res.parent) == g.n - 1

    def test_aggregate_sum_is_total_weight(self):
        g = uniform_weights(grid_2d(4, 6), 1, 9, seed=2)
        res = bfs_tree(g, 0)
        assert res.aggregate == pytest.approx(g.total_weight())

    def test_aggregate_max(self):
        g = path(7).with_weights({i: float(i) for i in range(7)})
        res = bfs_tree(g, 3, op="max")
        assert res.aggregate == 6.0

    def test_aggregate_min(self):
        g = path(7).with_weights({i: float(i + 1) for i in range(7)})
        res = bfs_tree(g, 0, op="min")
        assert res.aggregate == 1.0

    def test_custom_values(self):
        g = cycle(10)
        res = bfs_tree(g, 0, values={v: 1.0 for v in g.nodes})
        assert res.aggregate == 10.0

    def test_rounds_scale_with_depth(self):
        shallow = bfs_tree(star(20), 0)
        deep = bfs_tree(path(40), 0)
        assert deep.depth == 39
        assert shallow.depth == 1
        assert deep.metrics.rounds > shallow.metrics.rounds
        # ~2*depth + O(1).
        assert deep.metrics.rounds <= 2 * deep.depth + 6

    def test_single_node(self):
        g = path(1)
        res = bfs_tree(g, 0)
        assert res.aggregate == 1.0
        assert res.depth == 0

    def test_complete_graph_depth_one(self):
        res = bfs_tree(complete(8), 3)
        assert res.depth == 1
        assert all(p == 3 for p in res.parent.values())

    def test_unknown_root(self):
        with pytest.raises(GraphError):
            bfs_tree(path(3), 9)

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError, match="connected"):
            bfs_tree(disjoint_union([path(2), path(2)]), 0)

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="aggregation"):
            bfs_tree(path(3), 0, op="median")

    def test_all_registered_ops(self):
        assert set(AGGREGATIONS) == {"sum", "max", "min"}


class TestFlood:
    def test_everyone_receives(self):
        g = grid_2d(4, 4)
        outputs, metrics = flood_value(g, 0, "hello")
        assert all(v == "hello" for v in outputs.values())

    def test_rounds_equal_eccentricity(self):
        g = path(30)
        _, metrics = flood_value(g, 0, 1)
        assert metrics.rounds == 29
        _, metrics = flood_value(g, 15, 1)
        assert metrics.rounds == 15

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            flood_value(disjoint_union([path(2), path(2)]), 0, 1)
