"""Tests for the distributed H-partition."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    arboricity,
    barabasi_albert,
    caterpillar,
    complete,
    cycle,
    empty,
    gnp,
    grid_2d,
    random_tree,
)
from repro.primitives.h_partition import h_partition


class TestLevels:
    def test_tree_single_level(self):
        # Every tree node has degree <= ... no: stars have high degree.
        # A path peels entirely at level 0 with threshold 4.
        p = h_partition(cycle(20), alpha=2)
        assert p.num_levels == 1
        assert all(lvl == 0 for lvl in p.levels.values())

    def test_all_nodes_assigned(self):
        g = gnp(100, 0.08, seed=1)
        p = h_partition(g, alpha=arboricity(g))
        assert set(p.levels) == set(g.nodes)

    def test_logarithmically_many_levels(self):
        g = barabasi_albert(500, 2, seed=2)
        p = h_partition(g, alpha=arboricity(g))
        assert p.num_levels <= 2 * math.ceil(math.log2(500)) + 2

    def test_geometric_decay(self):
        # Proposition 5: at most half the active nodes survive each level.
        g = gnp(300, 0.05, seed=3)
        alpha = arboricity(g)
        p = h_partition(g, alpha=alpha)
        counts = {}
        for lvl in p.levels.values():
            counts[lvl] = counts.get(lvl, 0) + 1
        remaining = g.n
        for lvl in sorted(counts):
            assert counts[lvl] >= remaining / 2 - 1e-9
            remaining -= counts[lvl]

    def test_empty_and_complete(self):
        assert h_partition(empty(0)).num_levels == 0
        p = h_partition(complete(10), alpha=5)
        assert p.num_levels == 1  # threshold 20 >= degree 9


class TestOrientation:
    @pytest.mark.parametrize("maker,alpha", [
        (lambda: grid_2d(8, 8), 2),
        (lambda: random_tree(60, seed=4), 1),
        (lambda: caterpillar(20, 10), 1),
        (lambda: barabasi_albert(200, 2, seed=5), None),
    ])
    def test_out_degree_bounded(self, maker, alpha):
        g = maker()
        p = h_partition(g, alpha=alpha)
        orient = p.orientation(g)
        assert max((len(o) for o in orient.values()), default=0) <= p.threshold

    def test_orientation_covers_every_edge_once(self):
        g = gnp(60, 0.1, seed=6)
        p = h_partition(g, alpha=arboricity(g))
        orient = p.orientation(g)
        directed = [(u, v) for u, outs in orient.items() for v in outs]
        assert len(directed) == g.m
        assert {tuple(sorted(e)) for e in directed} == set(g.edges())


class TestParameters:
    def test_factor_below_two_rejected(self):
        with pytest.raises(GraphError):
            h_partition(cycle(5), alpha=1, factor=1)

    def test_alpha_computed_when_omitted(self):
        p = h_partition(random_tree(40, seed=7))
        assert p.threshold == 4  # 4 * alpha(tree) = 4

    def test_rounds_equal_levels(self):
        g = barabasi_albert(300, 2, seed=8)
        p = h_partition(g, alpha=2)
        # level k assigned in round k; rounds = deepest level.
        assert p.metrics.rounds == p.num_levels - 1
