"""Tests for the §5 martingale reconstruction."""

import pytest

from repro.analysis import check_proposition4_conditions, martingale_increments
from repro.core import seq_boppana_trajectory
from repro.graphs import cycle, gnp, random_regular


class TestProposition4Conditions:
    @pytest.mark.parametrize("seed", range(3))
    def test_conditions_hold_on_regular_graphs(self, seed):
        g = random_regular(240, 5, seed=seed)
        check = check_proposition4_conditions(g, seed=seed)
        assert check.max_change_ok
        assert check.expected_increase_ok
        assert check.k == 240 // 12

    def test_horizon_matches_paper(self):
        g = cycle(60)
        check = check_proposition4_conditions(g, seed=1)
        assert check.k == 60 // 6  # n/(2(Δ+1)) with Δ=2

    def test_final_size_beats_target_typically(self):
        # The k/4 target is extremely loose; the realized size should clear
        # it on every reasonable seed.
        g = random_regular(300, 4, seed=2)
        check = check_proposition4_conditions(g, seed=3)
        assert check.final_size >= check.target

    def test_min_probability_reported(self):
        g = cycle(30)
        check = check_proposition4_conditions(g, seed=4)
        assert 0.5 <= check.min_join_probability <= 1.0


class TestMartingaleIncrements:
    def test_increments_bounded(self):
        g = gnp(80, 0.05, seed=5)
        traj = seq_boppana_trajectory(g, seed=6)
        ys = martingale_increments(traj)
        assert all(-1.0 <= y <= 1.0 for y in ys)

    def test_increments_nearly_centered(self):
        # Over the whole trajectory the shifted increments average near 0
        # for the i.i.d. process; the permutation view tracks it closely.
        g = random_regular(400, 5, seed=7)
        traj = seq_boppana_trajectory(g, seed=8)
        ys = martingale_increments(traj)
        assert abs(sum(ys)) / len(ys) < 0.2
