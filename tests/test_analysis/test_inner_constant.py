"""The Theorem 2 default inner constant must be empirically conservative."""

from repro.analysis.inner_constant import estimate_inner_constant
from repro.core.theorem2 import DEFAULT_INNER_CONSTANT
from repro.graphs import (
    gnp,
    random_regular,
    skewed_heavy_set,
    uniform_weights,
)


def _battery():
    """A spread of degree regimes and weight skews."""
    return [
        uniform_weights(gnp(120, 0.1, seed=1), 1, 50, seed=2),
        uniform_weights(gnp(200, 0.04, seed=3), 1, 10, seed=4),
        skewed_heavy_set(random_regular(200, 40, seed=5), fraction=0.02,
                         heavy=1e6, seed=6),
        uniform_weights(random_regular(150, 10, seed=7), 1, 100, seed=8),
    ]


def test_default_constant_is_conservative():
    estimate = estimate_inner_constant(_battery(), trials_per_instance=3,
                                       seed=11)
    assert estimate.trials == 12
    assert estimate.supports(DEFAULT_INNER_CONSTANT), (
        f"implied c = {estimate.implied_c:.2f} exceeds the configured "
        f"{DEFAULT_INNER_CONSTANT}"
    )


def test_fractions_positive_and_recorded():
    estimate = estimate_inner_constant(_battery()[:1], trials_per_instance=2,
                                       seed=12)
    assert len(estimate.fractions) == 2
    assert estimate.worst_fraction > 0


def test_implied_c_inf_when_zero():
    from repro.analysis.inner_constant import InnerConstantEstimate

    est = InnerConstantEstimate(fractions=(0.0,), trials=1)
    assert est.implied_c == float("inf")
    assert not est.supports(8.0)
