"""Unit tests for complexity shape helpers."""

import pytest

from repro.analysis import (
    fit_loglinear,
    growth_ratio,
    log_w,
    poly_log_log,
    predicted_bar_yehuda_rounds,
    predicted_theorem1_rounds,
)


def test_log_w_values():
    assert log_w(2.0) == 1.0
    assert log_w(1024.0) == 10.0
    assert log_w(0.5) == 1.0  # clamped


def test_predicted_theorem1():
    assert predicted_theorem1_rounds(10, 0.5) == 20


def test_predicted_bar_yehuda():
    assert predicted_bar_yehuda_rounds(10, 1024) == 100


def test_poly_log_log_grows_slowly():
    assert poly_log_log(10 ** 9) < 30
    assert poly_log_log(10 ** 9) > poly_log_log(100)


def test_fit_loglinear_recovers_slope():
    xs = [2, 4, 8, 16, 32]
    ys = [3 + 2 * i for i in range(1, 6)]  # y = 3 + 2 log2 x
    a, b = fit_loglinear(xs, ys)
    assert a == pytest.approx(3.0)
    assert b == pytest.approx(2.0)


def test_fit_loglinear_flat_series():
    a, b = fit_loglinear([1, 10, 100], [7, 7, 7])
    assert a == pytest.approx(7.0)
    assert b == pytest.approx(0.0)


def test_fit_loglinear_degenerate_x():
    a, b = fit_loglinear([5, 5, 5], [1, 2, 3])
    assert b == 0.0
    assert a == pytest.approx(2.0)


def test_fit_loglinear_needs_two_points():
    with pytest.raises(ValueError):
        fit_loglinear([1], [1])


def test_growth_ratio():
    assert growth_ratio([2, 4, 8]) == 4.0
    assert growth_ratio([0.5, 1.0]) == 1.0  # min clamped to 1
    with pytest.raises(ValueError):
        growth_ratio([])
