"""Unit tests for the §3 concentration bounds."""

import math

import pytest

from repro.analysis import (
    azuma_bound,
    bernstein_bound,
    chernoff_bound,
    proposition4_tail,
    theorem11_failure_bound,
)


class TestChernoff:
    def test_formula(self):
        # ε=1, μ=30: 2 exp(-30/3).
        assert chernoff_bound(30, 1.0) == pytest.approx(2 * math.exp(-10))

    def test_capped_at_one(self):
        assert chernoff_bound(0.1, 0.5) == 1.0

    def test_monotone_in_mu(self):
        assert chernoff_bound(100, 0.5) < chernoff_bound(50, 0.5)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            chernoff_bound(10, 1.5)
        with pytest.raises(ValueError):
            chernoff_bound(-1, 0.5)


class TestBernstein:
    def test_formula(self):
        # t=6, M=1, Var=3: 2 exp(-18/(2+3)).
        assert bernstein_bound(6, 1, 3) == pytest.approx(2 * math.exp(-18 / 5))

    def test_zero_variance_zero_m(self):
        assert bernstein_bound(1.0, 0.0, 0.0) == 0.0
        assert bernstein_bound(0.0, 0.0, 0.0) == 1.0

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            bernstein_bound(-1, 1, 1)


class TestAzuma:
    def test_formula(self):
        # t=4, increments all 1, N=8: exp(-16/16).
        assert azuma_bound(4, [1] * 8) == pytest.approx(math.exp(-1))

    def test_no_increments(self):
        assert azuma_bound(1.0, []) == 0.0
        assert azuma_bound(0.0, []) == 1.0

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            azuma_bound(-0.1, [1])


class TestPaperSpecificBounds:
    def test_theorem11_bound(self):
        assert theorem11_failure_bound(2560, 9) == pytest.approx(math.exp(-1))

    def test_theorem11_decays_in_n(self):
        assert theorem11_failure_bound(10_000, 5) < theorem11_failure_bound(1_000, 5)

    def test_theorem11_rejects_bad_input(self):
        with pytest.raises(ValueError):
            theorem11_failure_bound(0, 3)

    def test_theorem11_whp_regime(self):
        # Δ <= n/log n makes the bound ~ exp(-log n / 512)-ish: shrinking.
        n = 10 ** 6
        delta = n // int(math.log(n))
        assert theorem11_failure_bound(n, delta) < 1.0

    def test_proposition4_tail(self):
        # k=128, M0=1, t=k/4=32: exp(-1024/1024) = e^-1 — the exp(-k/128)
        # of Theorem 11's proof.
        assert proposition4_tail(128, 1.0, 0.5, 32.0) == pytest.approx(math.exp(-1))

    def test_proposition4_rejects_bad_k(self):
        with pytest.raises(ValueError):
            proposition4_tail(0, 1.0, 0.5, 1.0)
