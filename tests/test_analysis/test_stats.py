"""Unit tests for trial statistics."""

import pytest

from repro.analysis import run_trials, summarize_trials, wilson_interval


class TestSummarize:
    def test_basic(self):
        s = summarize_trials([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert s.std > 0

    def test_single_value(self):
        s = summarize_trials([5.0])
        assert s.std == 0.0
        assert s.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])

    def test_as_row_length(self):
        assert len(summarize_trials([1.0, 2.0]).as_row()) == 6


class TestWilson:
    def test_all_successes(self):
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0
        assert 0.65 < lo < 1.0

    def test_no_successes(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi < 0.35

    def test_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi

    def test_interval_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestRunTrials:
    def test_distinct_seeds(self):
        seeds = run_trials(lambda s: s, 8, seed=1)
        assert len(set(seeds)) == 8

    def test_reproducible(self):
        a = run_trials(lambda s: s, 5, seed=2)
        b = run_trials(lambda s: s, 5, seed=2)
        assert a == b

    def test_different_master_seeds(self):
        a = run_trials(lambda s: s, 5, seed=2)
        b = run_trials(lambda s: s, 5, seed=3)
        assert a != b


class TestTraffic:
    def _trace(self):
        from repro.graphs import path
        from repro.simulator import Trace, run
        from tests.test_simulator.test_runner import CountRounds

        t = Trace()
        run(path(4), lambda: CountRounds(3), trace=t)
        return t

    def test_bits_per_round(self):
        from repro.analysis import bits_per_round

        rounds = bits_per_round(self._trace())
        assert len(rounds) == 3  # broadcasts in rounds 0..2
        assert all(rt.messages == 6 for rt in rounds)  # 2m = 6 per round
        assert all(rt.bits > 0 for rt in rounds)

    def test_messages_per_node(self):
        from repro.analysis import messages_per_node

        per_node = messages_per_node(self._trace())
        assert per_node[0] == 3   # endpoint: 1 neighbour x 3 rounds
        assert per_node[1] == 6   # interior: 2 neighbours x 3 rounds

    def test_busiest_round(self):
        from repro.analysis import bits_per_round, busiest_round

        t = self._trace()
        assert busiest_round(t).bits == max(rt.bits for rt in bits_per_round(t))

    def test_totals_match_metrics_even_with_drops(self):
        from repro.analysis import bits_per_round, messages_per_node
        from repro.graphs import star
        from repro.simulator import NodeAlgorithm, Trace, run

        class Hub(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.halt("early")

            def on_round(self, ctx, inbox):
                if ctx.round_index == 1:
                    ctx.broadcast("ping")  # addressed to the halted hub
                else:
                    ctx.halt(len(inbox))

        t = Trace()
        res = run(star(3), Hub, trace=t)
        assert res.metrics.dropped_messages == 3
        # Traffic views count dropped sends too: totals equal the charges.
        assert sum(rt.bits for rt in bits_per_round(t)) == res.metrics.total_bits
        assert sum(messages_per_node(t).values()) == res.metrics.messages

    def test_busiest_round_empty_trace(self):
        import pytest as _pytest

        from repro.analysis import busiest_round
        from repro.simulator import Trace

        with _pytest.raises(ValueError):
            busiest_round(Trace())
