"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    WeightedGraph,
    caterpillar,
    complete,
    cycle,
    gnp,
    grid_2d,
    path,
    random_regular,
    random_tree,
    star,
    uniform_weights,
)


@pytest.fixture
def triangle() -> WeightedGraph:
    return complete(3)


@pytest.fixture
def p4() -> WeightedGraph:
    """Path on 4 nodes with distinct weights 1..4."""
    return path(4).with_weights({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0})


@pytest.fixture
def c6() -> WeightedGraph:
    return cycle(6)


@pytest.fixture
def small_gnp() -> WeightedGraph:
    return gnp(40, 0.15, seed=7)


@pytest.fixture
def weighted_gnp() -> WeightedGraph:
    return uniform_weights(gnp(40, 0.15, seed=7), 1.0, 10.0, seed=8)


@pytest.fixture
def medium_gnp() -> WeightedGraph:
    return gnp(150, 0.05, seed=9)


@pytest.fixture
def tree60() -> WeightedGraph:
    return random_tree(60, seed=5)


@pytest.fixture
def grid5x6() -> WeightedGraph:
    return grid_2d(5, 6)


@pytest.fixture
def cat_tree() -> WeightedGraph:
    return caterpillar(10, 4)


@pytest.fixture
def regular_graph() -> WeightedGraph:
    return random_regular(60, 6, seed=11)


@pytest.fixture
def star10() -> WeightedGraph:
    return star(10)
