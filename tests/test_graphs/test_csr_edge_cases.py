"""Regression pins for CSR degenerate inputs.

The columnar backend leans on :class:`CSRIndex` for every run, so the
empty graph, the edgeless graph, and empty/odd-dtype slot selections
must all be well-defined — these used to be reachable only through
rarely-trodden ``induced_subgraph`` paths and are now hot.
"""

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph


class TestEmptyGraph:
    def test_zero_node_index_shape(self):
        csr = WeightedGraph.empty(0).csr
        assert csr.n == 0
        assert csr.indptr.tolist() == [0]
        assert csr.indices.size == 0
        assert csr.degrees.size == 0
        assert csr.weights.size == 0

    def test_max_degree_is_zero_without_nodes(self):
        assert WeightedGraph.empty(0).csr.max_degree == 0

    def test_max_degree_is_zero_edgeless(self):
        assert WeightedGraph.empty(7).csr.max_degree == 0

    def test_max_degree_matches_graph(self):
        g = WeightedGraph.from_edges([0, 1, 2, 9], [(0, 1), (0, 2), (0, 9)])
        assert g.csr.max_degree == g.max_degree == 3

    def test_induced_rows_on_zero_node_graph(self):
        csr = WeightedGraph.empty(0).csr
        kept, counts, nbrs = csr.induced_rows(np.array([], dtype=np.int64))
        assert kept.size == counts.size == nbrs.size == 0


class TestInducedRowsDtypes:
    def test_accepts_float_dtype_empty_selection(self):
        # np.array([]) is float64 — a legal "keep nothing" request that
        # used to raise IndexError (floats cannot index).
        csr = WeightedGraph.from_edges([0, 1, 2], [(0, 1), (1, 2)]).csr
        kept, counts, nbrs = csr.induced_rows(np.array([]))
        assert kept.size == counts.size == nbrs.size == 0

    def test_accepts_plain_lists(self):
        csr = WeightedGraph.from_edges([0, 1, 2], [(0, 1), (1, 2)]).csr
        kept, counts, nbrs = csr.induced_rows([0, 2])
        assert kept.tolist() == [0, 2]
        assert counts.tolist() == [0, 0]      # the bridge node 1 is gone
        assert nbrs.size == 0


class TestEdgelessSolves:
    def test_solve_reports_well_formed_on_edgeless_spec(self):
        from repro.api import solve
        from repro.graphs.specs import graph_from_spec

        g = graph_from_spec("gnp:6,0", 3)
        assert g.m == 0
        for backend in (None, "columnar"):
            report = solve(g, "thm8", seed=1, backend=backend)
            assert report.ok
            assert sorted(report.independent_set) == list(range(6))
            assert report.weight == g.total_weight()
            assert report.metrics is not None

    def test_solve_on_zero_node_graph(self):
        from repro.api import solve

        g = WeightedGraph.empty(0)
        for backend in (None, "columnar"):
            report = solve(g, "mis-det", seed=0, backend=backend)
            assert report.ok
            assert report.independent_set == ()
            assert report.weight == 0.0
