"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    caterpillar,
    complete,
    connected_components,
    cycle,
    disjoint_union,
    empty,
    gnp,
    grid_2d,
    is_connected,
    path,
    planted_heavy_hub,
    random_bipartite,
    random_regular,
    random_tree,
    star,
    union_of_random_forests,
)


class TestDeterministicGenerators:
    def test_cycle(self):
        g = cycle(5)
        assert g.n == 5 and g.m == 5
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle(2)

    def test_path(self):
        g = path(5)
        assert g.m == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_path_single_node(self):
        assert path(1).n == 1 and path(1).m == 0

    def test_complete(self):
        g = complete(6)
        assert g.m == 15
        assert g.max_degree == 5

    def test_star(self):
        g = star(7)
        assert g.n == 8
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_empty(self):
        assert empty(4).m == 0

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.max_degree == 4  # interior nodes of a 3x4 grid
        assert is_connected(g)

    def test_caterpillar(self):
        g = caterpillar(5, 3)
        assert g.n == 5 + 15
        assert g.m == 4 + 15
        assert is_connected(g)
        # Interior spine nodes: 2 spine edges + 3 legs.
        assert g.degree(2) == 5


class TestRandomGenerators:
    def test_gnp_reproducible(self):
        a = gnp(50, 0.1, seed=3)
        b = gnp(50, 0.1, seed=3)
        assert a == b

    def test_gnp_different_seeds_differ(self):
        assert gnp(50, 0.2, seed=3) != gnp(50, 0.2, seed=4)

    def test_gnp_extremes(self):
        assert gnp(20, 0.0, seed=1).m == 0
        assert gnp(6, 1.0, seed=1).m == 15

    def test_gnp_bad_p(self):
        with pytest.raises(GraphError):
            gnp(10, 1.5)

    def test_gnp_edge_count_plausible(self):
        n, p = 200, 0.05
        g = gnp(n, p, seed=5)
        expected = p * n * (n - 1) / 2
        assert 0.6 * expected < g.m < 1.4 * expected

    def test_gnp_valid_edges(self):
        g = gnp(30, 0.3, seed=8)
        for u, v in g.edges():
            assert 0 <= u < v < 30

    def test_random_regular(self):
        g = random_regular(30, 4, seed=2)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_random_regular_odd_product_rejected(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)

    def test_random_regular_d_too_big(self):
        with pytest.raises(GraphError):
            random_regular(4, 4)

    def test_random_tree_is_tree(self):
        g = random_tree(40, seed=6)
        assert g.m == 39
        assert is_connected(g)

    def test_random_tree_tiny(self):
        assert random_tree(1).n == 1
        assert random_tree(2).m == 1

    def test_union_of_forests_arboricity_bounded(self):
        from repro.graphs import arboricity

        g = union_of_random_forests(40, 3, seed=4)
        assert arboricity(g) <= 3

    def test_random_bipartite_no_internal_edges(self):
        g = random_bipartite(10, 12, 0.4, seed=3)
        for u, v in g.edges():
            assert (u < 10) != (v < 10)

    def test_planted_heavy_hub(self):
        g = planted_heavy_hub(100, 50, 1.0 / 100, seed=9)
        assert g.degree(0) >= 50

    def test_generator_accepts_generator_object(self):
        rng = np.random.default_rng(5)
        g = gnp(30, 0.2, seed=rng)
        assert g.n == 30


class TestDisjointUnion:
    def test_union_counts(self):
        g = disjoint_union([path(3), cycle(4)])
        assert g.n == 7
        assert g.m == 2 + 4
        assert len(connected_components(g)) == 2

    def test_union_preserves_weights(self):
        a = path(2).with_weights({0: 5, 1: 6})
        g = disjoint_union([a, a])
        assert g.total_weight() == 22


class TestPowerLaw:
    def test_basic_shape(self):
        from repro.graphs import power_law

        g = power_law(400, seed=1)
        assert g.n == 400
        assert g.max_degree <= 20 + 1  # truncated at sqrt(n) (+1 parity fix)

    def test_reproducible(self):
        from repro.graphs import power_law

        assert power_law(100, seed=2) == power_law(100, seed=2)

    def test_heavier_tail_with_smaller_exponent(self):
        from repro.graphs import power_law

        heavy = power_law(800, exponent=2.0, seed=3)
        light = power_law(800, exponent=3.5, seed=3)
        assert heavy.m > light.m

    def test_rejects_bad_params(self):
        import pytest as _pytest

        from repro.exceptions import GraphError
        from repro.graphs import power_law

        with _pytest.raises(GraphError):
            power_law(1)
        with _pytest.raises(GraphError):
            power_law(10, exponent=1.0)

    def test_min_degree_respected_roughly(self):
        from repro.graphs import power_law

        g = power_law(300, min_degree=2, seed=4)
        # Erasure drops a few edges; average degree stays close to the target.
        assert 2 * g.m / g.n >= 1.5


class TestBarabasiAlbert:
    def test_shape(self):
        from repro.graphs import barabasi_albert, is_connected

        g = barabasi_albert(200, 3, seed=1)
        assert g.n == 200
        assert is_connected(g)
        # Roughly m_edges per newcomer plus the seed clique.
        assert 3 * 190 <= g.m <= 3 * 200 + 10

    def test_hubs_grow(self):
        from repro.graphs import barabasi_albert

        g = barabasi_albert(600, 2, seed=2)
        assert g.max_degree >= 20  # preferential attachment concentrates

    def test_low_arboricity(self):
        from repro.graphs import arboricity, barabasi_albert

        g = barabasi_albert(300, 2, seed=3)
        assert arboricity(g) <= 4

    def test_reproducible(self):
        from repro.graphs import barabasi_albert

        assert barabasi_albert(80, 2, seed=4) == barabasi_albert(80, 2, seed=4)

    def test_rejects_bad_params(self):
        import pytest as _pytest

        from repro.exceptions import GraphError
        from repro.graphs import barabasi_albert

        with _pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with _pytest.raises(GraphError):
            barabasi_albert(10, 0)
