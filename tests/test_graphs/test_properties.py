"""Unit tests for structural property helpers."""

import pytest

from repro.graphs import (
    average_degree,
    bfs_distances,
    complete,
    connected_components,
    cycle,
    degree_histogram,
    diameter,
    disjoint_union,
    empty,
    grid_2d,
    is_connected,
    path,
    star,
    summarize,
)


def test_degree_histogram_star():
    hist = degree_histogram(star(5))
    assert hist == {5: 1, 1: 5}


def test_average_degree():
    assert average_degree(cycle(10)) == 2.0
    assert average_degree(empty(4)) == 0.0
    assert average_degree(empty(0)) == 0.0


def test_connected_components():
    g = disjoint_union([path(3), cycle(4), empty(2)])
    comps = connected_components(g)
    sizes = sorted(len(c) for c in comps)
    assert sizes == [1, 1, 3, 4]


def test_is_connected():
    assert is_connected(cycle(5))
    assert not is_connected(disjoint_union([path(2), path(2)]))
    assert is_connected(empty(0))
    assert is_connected(empty(1))


def test_bfs_distances_path():
    d = bfs_distances(path(5), 0)
    assert d == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_distances_unreachable():
    g = disjoint_union([path(2), path(2)])
    d = bfs_distances(g, 0)
    assert set(d) == {0, 1}


def test_diameter_values():
    assert diameter(path(5)) == 4
    assert diameter(cycle(6)) == 3
    assert diameter(complete(4)) == 1
    assert diameter(grid_2d(3, 3)) == 4


def test_diameter_disconnected_raises():
    with pytest.raises(ValueError):
        diameter(disjoint_union([path(2), path(2)]))
    with pytest.raises(ValueError):
        diameter(empty(0))


def test_summarize():
    g = cycle(6).with_weights({v: 2.0 for v in range(6)})
    s = summarize(g)
    assert s.n == 6
    assert s.m == 6
    assert s.max_degree == 2
    assert s.total_weight == 12.0
    assert s.max_weight == 2.0
    assert s.components == 1
    assert len(s.as_row()) == 7


class TestComplement:
    def test_path_complement(self):
        from repro.graphs import complement

        g = complement(path(3))
        assert g.m == 1
        assert g.has_edge(0, 2)

    def test_involution(self):
        from repro.graphs import complement, gnp

        g = gnp(20, 0.3, seed=1).with_weights({v: float(v) for v in range(20)})
        assert complement(complement(g)) == g

    def test_edge_count(self):
        from repro.graphs import complement, gnp

        g = gnp(15, 0.4, seed=2)
        assert g.m + complement(g).m == 15 * 14 // 2

    def test_complete_complement_empty(self):
        from repro.graphs import complement

        assert complement(complete(6)).m == 0
