"""Unit tests for the §7 cycle-of-cliques construction."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import cycle_of_cliques
from repro.graphs.properties import is_connected


class TestConstruction:
    def test_node_and_edge_counts(self):
        inst = cycle_of_cliques(5, 4)
        g = inst.graph
        assert g.n == 20
        # Per clique: C(4,2)=6 internal; per adjacent pair: 16 biclique.
        assert g.m == 5 * 6 + 5 * 16

    def test_uniform_degree(self):
        inst = cycle_of_cliques(6, 3)
        g = inst.graph
        # Own clique (n1-1) + two neighbouring cliques (2*n1).
        assert all(g.degree(v) == 3 * 3 - 1 for v in g.nodes)

    def test_connected(self):
        assert is_connected(cycle_of_cliques(4, 3).graph)

    def test_minimum_sizes_rejected(self):
        with pytest.raises(GraphError):
            cycle_of_cliques(2, 3)
        with pytest.raises(GraphError):
            cycle_of_cliques(4, 0)

    def test_single_node_cliques_give_plain_cycle(self):
        inst = cycle_of_cliques(7, 1)
        g = inst.graph
        assert g.n == 7
        assert g.m == 7
        assert all(g.degree(v) == 2 for v in g.nodes)


class TestBookkeeping:
    def test_clique_index(self):
        inst = cycle_of_cliques(4, 5)
        assert inst.clique_index(0) == 0
        assert inst.clique_index(4) == 0
        assert inst.clique_index(5) == 1
        assert inst.clique_index(19) == 3

    def test_members(self):
        inst = cycle_of_cliques(4, 5)
        assert inst.members(2) == (10, 11, 12, 13, 14)

    def test_members_out_of_range(self):
        with pytest.raises(GraphError):
            cycle_of_cliques(4, 5).members(4)

    def test_adjacency_rule(self):
        inst = cycle_of_cliques(5, 2)
        g = inst.graph
        # Same clique: adjacent.
        assert g.has_edge(0, 1)
        # Consecutive cliques: adjacent (biclique).
        assert g.has_edge(1, 2)
        # Wrap-around cliques 0 and 4: adjacent.
        assert g.has_edge(0, 8)
        # Cliques 0 and 2: not adjacent.
        assert not g.has_edge(0, 4)

    def test_projection_of_independent_set(self):
        inst = cycle_of_cliques(6, 3)
        # One node from cliques 0, 2, 4 — independent in C1.
        chosen = [inst.members(0)[0], inst.members(2)[1], inst.members(4)[2]]
        assert inst.project_independent_set(chosen) == frozenset({0, 2, 4})
