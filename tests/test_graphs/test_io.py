"""Unit tests for graph serialization."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import gnp, uniform_weights
from repro.graphs.io import dumps, from_json, load, loads, save, to_json


@pytest.fixture
def sample():
    return uniform_weights(gnp(20, 0.2, seed=1), 1, 5, seed=2)


def test_text_roundtrip(sample):
    assert loads(dumps(sample)) == sample


def test_file_roundtrip(sample, tmp_path):
    p = tmp_path / "g.wg"
    save(sample, p)
    assert load(p) == sample


def test_json_roundtrip(sample):
    assert from_json(to_json(sample)) == sample


def test_loads_ignores_comments_and_blanks(sample):
    text = "# header comment\n\n" + dumps(sample)
    assert loads(text) == sample


def test_loads_empty_rejected():
    with pytest.raises(GraphFormatError):
        loads("")


def test_loads_bad_header():
    with pytest.raises(GraphFormatError):
        loads("abc def")


def test_loads_wrong_line_count():
    with pytest.raises(GraphFormatError):
        loads("2 1\n0 1.0\n1 1.0\n0 1\n0 1")


def test_loads_bad_node_line():
    with pytest.raises(GraphFormatError):
        loads("1 0\n0 1.0 extra")


def test_loads_bad_edge_line():
    with pytest.raises(GraphFormatError):
        loads("2 1\n0 1.0\n1 1.0\n0")


def test_from_json_malformed():
    with pytest.raises(GraphFormatError):
        from_json('{"nodes": "oops"}')
