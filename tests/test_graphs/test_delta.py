"""The delta plane's foundational contract: apply == rebuild.

A delta child must be **byte-identical** to building the edited graph
from scratch — same canonical adjacency, same weights, same CSR arrays,
same fingerprint, and therefore the same fixed-seed solve report on
every backend.  Everything the serving layer does with deltas (content
addressing, cache keys, incremental re-solve) leans on this.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import solve
from repro.graphs import WeightedGraph, gnp, random_tree, uniform_weights
from repro.graphs.delta import (
    DeltaConflictError,
    GraphDelta,
    apply_delta,
    apply_delta_info,
    dirty_region,
)


def _base_graph(seed: int) -> WeightedGraph:
    if seed % 2:
        g = gnp(18, 0.2, seed=seed)
    else:
        g = random_tree(16, seed=seed)
    return uniform_weights(g, 1, 20, seed=seed + 1)


def _random_script(graph: WeightedGraph, rng: random.Random,
                   n_ops: int, *, weight_only: bool = False):
    """A valid edit script plus the from-scratch state it produces.

    Mirrors the graph's state op by op so every generated op applies
    cleanly; returns ``(ops, nodes, edges, weights)`` where the last
    three describe the edited graph built from scratch.
    """
    weights = {v: graph.weight(v) for v in graph.nodes}
    edges = {tuple(sorted((u, v))) for u in graph.nodes
             for v in graph.neighbors(u)}
    next_id = max(weights) + 1 if weights else 0
    ops = []
    kinds = (["set_weight"] if weight_only else
             ["set_weight", "set_weight", "add_node", "remove_node",
              "add_edge", "remove_edge"])
    for _ in range(n_ops):
        kind = rng.choice(kinds)
        alive = sorted(weights)
        if kind == "set_weight" and alive:
            v = rng.choice(alive)
            w = float(rng.randint(1, 50))
            weights[v] = w
            ops.append(["set_weight", v, w])
        elif kind == "add_node":
            w = float(rng.randint(1, 50))
            weights[next_id] = w
            ops.append(["add_node", next_id, w])
            next_id += 1
        elif kind == "remove_node" and len(alive) > 2:
            v = rng.choice(alive)
            del weights[v]
            edges = {e for e in edges if v not in e}
            ops.append(["remove_node", v])
        elif kind == "add_edge" and len(alive) >= 2:
            u, v = rng.sample(alive, 2)
            key = tuple(sorted((u, v)))
            if key not in edges:
                edges.add(key)
                ops.append(["add_edge", u, v])
        elif kind == "remove_edge" and edges:
            u, v = rng.choice(sorted(edges))
            edges.discard((u, v))
            ops.append(["remove_edge", u, v])
    return ops, sorted(weights), sorted(edges), weights


class TestApplyEqualsRebuild:
    @given(seed=st.integers(0, 10_000), editseed=st.integers(0, 10_000),
           n_ops=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_child_is_byte_identical_to_from_scratch(self, seed, editseed,
                                                     n_ops):
        parent = _base_graph(seed)
        rng = random.Random(editseed)
        ops, nodes, edges, weights = _random_script(parent, rng, n_ops)
        child = apply_delta(parent, GraphDelta.of(ops))
        scratch = WeightedGraph.from_edges(nodes, edges, weights)
        assert child == scratch
        assert child.fingerprint() == scratch.fingerprint()
        # CSR arrays agree element for element — the zero-copy plane
        # ships exactly these.
        a, b = child.csr, scratch.csr
        for name in ("ids", "indptr", "indices", "weights"):
            np.testing.assert_array_equal(getattr(a, name),
                                          getattr(b, name), err_msg=name)

    @given(seed=st.integers(0, 10_000), editseed=st.integers(0, 10_000),
           chain_len=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_delta_chain_equals_one_rebuild(self, seed, editseed, chain_len):
        parent = _base_graph(seed)
        rng = random.Random(editseed)
        current = parent
        for _ in range(chain_len):
            ops, nodes, edges, weights = _random_script(current, rng, 4)
            current = apply_delta(current, GraphDelta.of(ops))
            scratch = WeightedGraph.from_edges(nodes, edges, weights)
            assert current.fingerprint() == scratch.fingerprint()

    @given(seed=st.integers(0, 5_000), editseed=st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_fixed_seed_reports_identical_on_both_backends(self, seed,
                                                           editseed):
        """The acceptance pin: a solve of the delta child is
        byte-identical to a solve of the equivalent from-scratch graph,
        fingerprint through report sha256, on both backends."""
        parent = _base_graph(seed)
        rng = random.Random(editseed)
        ops, nodes, edges, weights = _random_script(parent, rng, 6)
        child = apply_delta(parent, GraphDelta.of(ops))
        scratch = WeightedGraph.from_edges(nodes, edges, weights)
        for backend in ("per-node", "columnar"):
            shas = [
                hashlib.sha256(
                    solve(g, "mis-luby", seed=7,
                          backend=backend).to_json().encode()).hexdigest()
                for g in (child, scratch)
            ]
            assert shas[0] == shas[1], backend

    def test_weight_only_child_shares_parent_topology_arrays(self):
        parent = _base_graph(3)
        v = parent.nodes[0]
        parent.csr  # materialize: sharing starts from the parent's index
        info = apply_delta_info(parent, GraphDelta.of(
            [["set_weight", v, 99.0]]))
        assert info.weight_only
        a, b = parent.csr, info.graph.csr
        # ids/indptr/indices are shared (same objects), weights are not.
        assert a.ids is b.ids
        assert a.indptr is b.indptr
        assert a.indices is b.indices
        assert a.weights is not b.weights
        assert info.graph.weight(v) == 99.0


class TestConflicts:
    def test_remove_missing_node_conflicts(self):
        g = _base_graph(1)
        with pytest.raises(DeltaConflictError):
            apply_delta(g, GraphDelta.of([["remove_node", 10**9]]))

    def test_add_existing_node_conflicts(self):
        g = _base_graph(1)
        v = g.nodes[0]
        with pytest.raises(DeltaConflictError):
            apply_delta(g, GraphDelta.of([["add_node", v, 1.0]]))

    def test_add_existing_edge_conflicts(self):
        g = _base_graph(1)
        u = next(v for v in g.nodes if g.neighbors(v))
        w = g.neighbors(u)[0]
        with pytest.raises(DeltaConflictError):
            apply_delta(g, GraphDelta.of([["add_edge", u, w]]))

    def test_remove_missing_edge_conflicts(self):
        g = _base_graph(1)
        nodes = g.nodes
        pair = next(((u, v) for u in nodes for v in nodes
                     if u < v and v not in g.neighbors(u)), None)
        assert pair is not None
        with pytest.raises(DeltaConflictError):
            apply_delta(g, GraphDelta.of([["remove_edge", *pair]]))

    def test_malformed_op_shape_conflicts_at_parse(self):
        with pytest.raises(DeltaConflictError):
            GraphDelta.of([["warp_node", 1]])
        with pytest.raises(DeltaConflictError):
            GraphDelta.of([["set_weight", 1]])


class TestDirtyRegion:
    def test_region_is_radius_one_ball(self):
        g = _base_graph(2)
        v = next(u for u in g.nodes if g.neighbors(u))
        region, frontier = dirty_region(g, [v], radius=1)
        assert v in region
        assert set(g.neighbors(v)) <= region
        assert frontier <= region

    def test_region_of_absent_node_is_empty_of_it(self):
        g = _base_graph(2)
        region, _ = dirty_region(g, [10**9], radius=1)
        assert 10**9 not in region
