"""Property-style serialization round-trips over the generator zoo.

The batch engine keys its on-disk cache by graph content, so ``dumps``/
``loads`` and ``to_json``/``from_json`` must be exact inverses for every
graph the generators can produce — including graphs with non-contiguous
node ids (induced subgraphs keep original ids) and zero-weight nodes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.graphs import (WeightedGraph, barabasi_albert, caterpillar,
                          complete, cycle, gnp, grid_2d, path, random_tree,
                          star, uniform_weights, unit_weights)
from repro.graphs.io import dumps, from_json, loads, to_json

ZOO = [
    lambda seed: gnp(20, 0.15, seed=seed),
    lambda seed: gnp(12, 0.5, seed=seed),
    lambda seed: random_tree(18, seed=seed),
    lambda seed: barabasi_albert(15, 2, seed=seed),
    lambda seed: cycle(11),
    lambda seed: path(9),
    lambda seed: star(7),
    lambda seed: complete(6),
    lambda seed: grid_2d(3, 4),
    lambda seed: caterpillar(4, 3),
]


def _roundtrips(g: WeightedGraph) -> None:
    assert loads(dumps(g)) == g
    assert from_json(to_json(g)) == g
    assert loads(dumps(g)).fingerprint() == g.fingerprint()


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       wseed=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_zoo_roundtrip_with_random_weights(gen, seed, wseed):
    g = uniform_weights(gen(seed), 0.5, 100.0, seed=wseed)
    _roundtrips(g)


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_zoo_roundtrip_unit_weights(gen, seed):
    _roundtrips(unit_weights(gen(seed)))


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       stride=st.integers(2, 17), offset=st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_non_contiguous_node_ids_roundtrip(gen, seed, stride, offset):
    # Remap ids to an arithmetic progression: gaps everywhere, and the
    # smallest id need not be 0.
    g = gen(seed)
    relabel = {v: offset + stride * v for v in g.nodes}
    h = WeightedGraph.from_edges(
        relabel.values(),
        [(relabel[u], relabel[v]) for u, v in g.edges()],
        {relabel[v]: g.weight(v) for v in g.nodes},
    )
    _roundtrips(h)
    assert loads(dumps(h)).nodes == h.nodes


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       zeros=st.sets(st.integers(0, 30), max_size=10))
@settings(max_examples=60, deadline=None)
def test_zero_weight_nodes_roundtrip(gen, seed, zeros):
    g = gen(seed)
    zeroed = zeros & set(g.nodes)
    g = g.with_weights({v: (0.0 if v in zeroed else g.weight(v))
                        for v in g.nodes})
    back = loads(dumps(g))
    _roundtrips(g)
    assert all(back.weight(v) == 0.0 for v in zeroed)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_induced_subgraph_keeps_ids_through_io(seed):
    # Induced subgraphs of the zoo preserve original ids — the shape the
    # paper's phase algorithms feed back through the cache.
    g = uniform_weights(gnp(24, 0.2, seed=seed), 1, 10, seed=seed)
    keep = [v for v in g.nodes if v % 3 != 0]
    h = g.induced_subgraph(keep)
    _roundtrips(h)
    assert loads(dumps(h)).nodes == tuple(sorted(keep))


@pytest.mark.parametrize("weird", [0.1 + 0.2, 1e-300, 1.5e300, 1 / 3])
def test_awkward_float_weights_are_exact(weird):
    # repr() round-trips shortest-form floats exactly; the text format
    # must not lose precision on any of them.
    g = path(3).with_weights({0: weird, 1: 1.0, 2: weird})
    assert loads(dumps(g)).weight(0) == weird
    assert from_json(to_json(g)).weight(2) == weird


# --------------------------------------------------------------------- #
# binary codec: equal to the JSON codec on everything the zoo produces
# --------------------------------------------------------------------- #

def _binary_roundtrips(g: WeightedGraph) -> None:
    from repro.graphs.io import from_buffer, from_bytes, to_bytes

    blob = to_bytes(g)
    for back in (from_bytes(blob), from_buffer(blob)):
        assert back == g
        assert back.fingerprint() == g.fingerprint()
        assert back.nodes == g.nodes
    # The two codecs are interchangeable: JSON-decode of the JSON
    # encoding equals binary-decode of the binary encoding.
    assert from_bytes(blob) == from_json(to_json(g))


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       wseed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_zoo_binary_roundtrip_with_random_weights(gen, seed, wseed):
    _binary_roundtrips(uniform_weights(gen(seed), 0.5, 100.0, seed=wseed))


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       stride=st.integers(2, 17), offset=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_non_contiguous_node_ids_binary_roundtrip(gen, seed, stride, offset):
    g = gen(seed)
    relabel = {v: offset + stride * v for v in g.nodes}
    h = WeightedGraph.from_edges(
        relabel.values(),
        [(relabel[u], relabel[v]) for u, v in g.edges()],
        {relabel[v]: g.weight(v) for v in g.nodes},
    )
    _binary_roundtrips(h)


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1),
       zeros=st.sets(st.integers(0, 30), max_size=10))
@settings(max_examples=40, deadline=None)
def test_zero_weight_nodes_binary_roundtrip(gen, seed, zeros):
    from repro.graphs.io import from_bytes, to_bytes

    g = gen(seed)
    zeroed = zeros & set(g.nodes)
    g = g.with_weights({v: (0.0 if v in zeroed else g.weight(v))
                        for v in g.nodes})
    _binary_roundtrips(g)
    back = from_bytes(to_bytes(g))
    assert all(back.weight(v) == 0.0 for v in zeroed)


def test_empty_graph_binary_roundtrip():
    from repro.graphs.io import from_bytes, to_bytes

    g = WeightedGraph.from_edges([], [], {})
    _binary_roundtrips(g)
    assert from_bytes(to_bytes(g)).n == 0


@pytest.mark.parametrize("weird", [0.1 + 0.2, 1e-300, 1.5e300, 1 / 3])
def test_awkward_float_weights_exact_in_binary(weird):
    from repro.graphs.io import from_bytes, to_bytes

    g = path(3).with_weights({0: weird, 1: 1.0, 2: weird})
    back = from_bytes(to_bytes(g))
    assert back.weight(0) == weird and back.weight(2) == weird


@given(gen=st.sampled_from(ZOO), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_binary_encoding_is_deterministic(gen, seed):
    from repro.graphs.io import to_bytes

    g = uniform_weights(gen(seed), 1, 50, seed=seed)
    assert to_bytes(g) == to_bytes(loads(dumps(g)))
