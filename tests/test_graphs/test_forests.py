"""Unit tests for degeneracy, forest partitioning, and exact arboricity."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    arboricity,
    complete,
    cycle,
    degeneracy,
    empty,
    gnp,
    grid_2d,
    nash_williams_lower_bound,
    partition_into_forests,
    path,
    random_tree,
    union_of_random_forests,
)


def _forest_is_acyclic(edges) -> bool:
    parent = {}

    def find(x):
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(30, seed=1)) == 1

    def test_cycle_degeneracy_two(self):
        assert degeneracy(cycle(10)) == 2

    def test_complete_graph(self):
        assert degeneracy(complete(6)) == 5

    def test_empty_graph(self):
        assert degeneracy(empty(5)) == 0
        assert degeneracy(empty(0)) == 0

    def test_grid(self):
        assert degeneracy(grid_2d(5, 5)) == 2


class TestPartitionIntoForests:
    def test_tree_fits_one_forest(self):
        g = random_tree(25, seed=2)
        forests = partition_into_forests(g, 1)
        assert forests is not None
        assert len(forests[0]) == g.m

    def test_cycle_needs_two(self):
        g = cycle(8)
        assert partition_into_forests(g, 1) is None
        forests = partition_into_forests(g, 2)
        assert forests is not None

    def test_partition_covers_all_edges_disjointly(self):
        g = gnp(30, 0.25, seed=3)
        k = degeneracy(g)
        forests = partition_into_forests(g, k)
        assert forests is not None
        all_edges = [e for f in forests for e in f]
        assert len(all_edges) == g.m
        assert set(all_edges) == set(g.edges())

    def test_partition_forests_are_acyclic(self):
        g = gnp(25, 0.3, seed=4)
        forests = partition_into_forests(g, degeneracy(g))
        assert forests is not None
        for f in forests:
            assert _forest_is_acyclic(f)

    def test_zero_forests(self):
        assert partition_into_forests(empty(4), 0) == []
        assert partition_into_forests(cycle(4), 0) is None

    def test_negative_k_rejected(self):
        with pytest.raises(GraphError):
            partition_into_forests(cycle(4), -1)

    def test_complete_graph_bound(self):
        # α(K_n) = ceil(n/2).
        g = complete(7)
        assert partition_into_forests(g, 3) is None
        assert partition_into_forests(g, 4) is not None


class TestArboricity:
    def test_known_values(self):
        assert arboricity(random_tree(20, seed=5)) == 1
        assert arboricity(cycle(9)) == 2
        assert arboricity(complete(6)) == 3
        assert arboricity(complete(7)) == 4
        assert arboricity(grid_2d(6, 6)) == 2

    def test_empty(self):
        assert arboricity(empty(5)) == 0

    def test_path_single_edge(self):
        assert arboricity(path(2)) == 1

    def test_union_of_forests_upper_bound(self):
        for k in (2, 3):
            g = union_of_random_forests(30, k, seed=k)
            assert arboricity(g) <= k

    def test_witness_decomposition(self):
        g = gnp(25, 0.3, seed=6)
        alpha, forests = arboricity(g, return_witness=True)
        assert len(forests) == alpha
        assert sum(len(f) for f in forests) == g.m
        for f in forests:
            assert _forest_is_acyclic(f)

    def test_nash_williams_lower_bound(self):
        assert nash_williams_lower_bound(complete(5)) == 3  # ceil(10/4)
        assert nash_williams_lower_bound(empty(3)) == 0
        assert nash_williams_lower_bound(path(2)) == 1

    def test_sandwiched_by_degeneracy(self):
        for seed in range(4):
            g = gnp(35, 0.2, seed=seed)
            a = arboricity(g)
            d = degeneracy(g)
            assert nash_williams_lower_bound(g) <= a <= d <= max(2 * a - 1, 1)
