"""Golden byte-identity through the zero-copy attach path.

The frozen FAMILY_GOLDENS hashes (tests/test_faults) pin the exact
fixed-seed report of one algorithm per theorem family.  Here the same
runs execute on a graph that went *through the store* — binary-encoded,
persisted, re-attached as read-only CSR views in a fresh store — and on
a :class:`~repro.graphs.store.GraphRef` handed to :func:`repro.api.solve`.
If attach reconstructed iteration order, weights, or adjacency even one
bit differently, these hashes would drift.
"""

import hashlib
import json

import pytest

from repro.graphs import gnp
from repro.graphs.store import GraphStore
from repro.graphs.weights import integer_weights

from tests.test_faults import test_runner_faults as _runner_faults

# Single source of truth for the frozen hashes (not imported by class
# name, which would make pytest collect that suite twice).
FAMILY_GOLDENS = _runner_faults.TestFaultFreeByteIdentity.FAMILY_GOLDENS


def _golden_graph():
    return integer_weights(gnp(60, 0.1, seed=5), 100, seed=6)


def _strip_wall(obj):
    if isinstance(obj, dict):
        return {k: _strip_wall(v) for k, v in obj.items()
                if k != "wall_seconds"}
    if isinstance(obj, list):
        return [_strip_wall(x) for x in obj]
    return obj


def _assert_goldens_on(graph):
    from repro.registry import algorithm_registry

    registry = algorithm_registry()
    for name, want in FAMILY_GOLDENS.items():
        res = registry[name](graph, seed=42)
        doc = {
            "independent_set": sorted(int(v) for v in res.independent_set),
            "metrics": _strip_wall(res.metrics.to_dict()),
            "weight": graph.total_weight(res.independent_set),
        }
        got = hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()).hexdigest()
        assert got == want, f"{name} drifted through the store: {got}"


@pytest.fixture
def attached(tmp_path):
    g = _golden_graph()
    with GraphStore(tmp_path) as writer:
        fp = writer.put(g).ref
    # A fresh store has no memo: this attach materializes from the
    # persisted blob (shm or mmap), exactly what a worker process does.
    with GraphStore(tmp_path) as reader:
        yield reader.attach(fp)


def test_family_goldens_hold_on_attached_graph(attached):
    _assert_goldens_on(attached)


def test_family_goldens_hold_on_attached_graph_columnar(attached):
    from repro.simulator.instrument import install_backend

    with install_backend("columnar"):
        _assert_goldens_on(attached)


@pytest.mark.parametrize("backend", ["per-node", "columnar"])
def test_solve_by_ref_matches_solve_by_graph(tmp_path, backend):
    from repro.api import solve

    g = _golden_graph()
    with GraphStore(tmp_path) as store:
        ref = store.put(g)
        kwargs = {} if backend == "per-node" else {"backend": backend}
        a = solve(g, "thm2", seed=42, eps=0.5, **kwargs)
        b = solve(ref, "thm2", seed=42, eps=0.5, **kwargs)
        assert a.to_json() == b.to_json()
