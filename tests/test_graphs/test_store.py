"""Content-addressed graph store: put/attach/evict, zero-copy attach,
cross-store visibility, and shared-memory hygiene.

The store is the backbone of solve-by-reference: ``/v1/solve`` with a
``graph_ref`` and pickled :class:`~repro.graphs.store.GraphRef` objects
in batch jobs both resolve through it, so an attached graph must be
*indistinguishable* from the original — same fingerprint, same
iteration order, byte-identical solver results.
"""

import multiprocessing
import os

import pytest

from repro.api import solve
from repro.graphs import gnp, uniform_weights
from repro.graphs.io import GraphFormatError, to_bytes
from repro.graphs.store import (
    GraphRef,
    GraphStore,
    UnknownGraphRef,
    ephemeral_store,
    get_store,
    resolve,
    shm_segment_name,
)
from repro.graphs.weighted_graph import WeightedGraph


@pytest.fixture
def graph():
    return uniform_weights(gnp(30, 0.15, seed=4), 1, 20, seed=9)


def test_put_then_attach_is_identical(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        ref = store.put(graph)
        assert ref.ref == graph.fingerprint()
        assert ref.n == graph.n and ref.m == graph.m
        back = store.attach(ref.ref)
        assert back == graph
        assert back.fingerprint() == graph.fingerprint()
        assert back.nodes == graph.nodes


def test_attach_from_fresh_store_solves_identically(tmp_path, graph):
    # A second store over the same root simulates another process: it
    # has no memo and must attach from the persisted blob.
    with GraphStore(tmp_path) as writer:
        fp = writer.put(graph).ref
    with GraphStore(tmp_path) as reader:
        attached = reader.attach(fp)
        a = solve(graph, "thm2", seed=3, eps=0.5)
        b = solve(attached, "thm2", seed=3, eps=0.5)
        assert a.to_json() == b.to_json()


def test_put_is_idempotent(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        r1 = store.put(graph)
        r2 = store.put(graph)
        assert r1 == r2
        assert store.refs() == [r1.ref]


def test_put_bytes_validates_fingerprint(tmp_path, graph):
    blob = to_bytes(graph)
    with GraphStore(tmp_path) as store:
        ref = store.put_bytes(blob)
        assert ref.ref == graph.fingerprint()
    # A blob whose header claims a different fingerprint is rejected:
    # content addressing must not be poisonable.
    forged = blob.replace(graph.fingerprint().encode(),
                          ("0" * 64).encode())
    with GraphStore(tmp_path / "other") as store:
        with pytest.raises(GraphFormatError):
            store.put_bytes(forged)


def test_unknown_ref_raises(tmp_path):
    with GraphStore(tmp_path) as store:
        with pytest.raises(UnknownGraphRef):
            store.attach("0" * 64)
        with pytest.raises(UnknownGraphRef):
            store.describe("0" * 64)
        assert ("0" * 64) not in store


def test_path_traversal_refs_rejected(tmp_path):
    with GraphStore(tmp_path) as store:
        for bad in ("../../etc/passwd", "a/b", "a\\b", "x.rwg"):
            with pytest.raises(GraphFormatError):
                store.attach(bad)


def test_describe_reads_header_only(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        fp = store.put(graph).ref
    with GraphStore(tmp_path) as store:
        info = store.describe(fp)
        assert info["n"] == graph.n and info["m"] == graph.m
        assert info["nbytes"] > 0
        # describe must not populate the attach memo.
        assert store._graphs == {}


def test_evict(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        fp = store.put(graph).ref
        assert store.evict(fp) is True
        assert fp not in store
        assert store.evict(fp) is False
        with pytest.raises(UnknownGraphRef):
            store.attach(fp)


def test_concurrent_readers_share_one_graph(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        fp = store.put(graph).ref
    with GraphStore(tmp_path) as reader:
        a = reader.attach(fp)
        b = reader.attach(fp)
        assert a is b  # the per-store memo: one materialization


def test_graph_ref_resolve_roundtrip(tmp_path, graph):
    with GraphStore(tmp_path) as store:
        ref = store.put(graph)
        assert resolve(ref) == graph
    # Self-describing: a ref carries its root, so a fresh process (here:
    # the module-level resolver with no prior store) can resolve it.
    ref2 = GraphRef(ref=ref.ref, root=str(tmp_path), n=ref.n, m=ref.m)
    assert resolve(ref2) == graph


def test_get_store_memoizes_per_root(tmp_path):
    s1 = get_store(tmp_path)
    s2 = get_store(os.path.join(str(tmp_path), "."))
    assert s1 is s2


def test_ephemeral_store_cleans_up(graph):
    store = ephemeral_store()
    root = store.root
    store.put(graph)
    assert os.path.isdir(root)
    store.close()
    assert not os.path.exists(root)


def test_empty_graph_roundtrips_through_store(tmp_path):
    g = WeightedGraph.from_edges([], [], {})
    with GraphStore(tmp_path) as store:
        fp = store.put(g).ref
    with GraphStore(tmp_path) as reader:
        assert reader.attach(fp) == g


def test_no_leaked_shm_segments_after_close(tmp_path, graph):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    with GraphStore(tmp_path, use_shm=True) as store:
        fp = store.put(graph).ref
        store.attach(fp)
    assert not os.path.exists(os.path.join("/dev/shm",
                                           shm_segment_name(fp)))


def _child_attach(root, fp, queue):
    from repro.graphs.store import GraphStore

    with GraphStore(root) as store:
        g = store.attach(fp)
        queue.put((g.n, g.m, g.fingerprint()))


def test_cross_process_attach(tmp_path, graph):
    # The mmap/shm fallback pair must let a genuinely separate process
    # attach the same fingerprint and see the identical graph.
    with GraphStore(tmp_path) as store:
        fp = store.put(graph).ref
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_attach,
                           args=(str(tmp_path), fp, queue))
        proc.start()
        n, m, child_fp = queue.get(timeout=60)
        proc.join(timeout=60)
        assert (n, m, child_fp) == (graph.n, graph.m, fp)
        assert proc.exitcode == 0
