"""Unit tests for the WeightedGraph data structure."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import WeightedGraph, complete, path


class TestConstruction:
    def test_from_edges_basic(self):
        g = WeightedGraph.from_edges([0, 1, 2], [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.neighbors(1) == (0, 2)

    def test_from_edges_default_unit_weights(self):
        g = WeightedGraph.from_edges([0, 1], [(0, 1)])
        assert g.weight(0) == 1.0
        assert g.weight(1) == 1.0

    def test_from_edges_with_weights(self):
        g = WeightedGraph.from_edges([0, 1], [(0, 1)], {0: 2.5, 1: 0.5})
        assert g.weight(0) == 2.5
        assert g.total_weight() == 3.0

    def test_duplicate_edges_collapse(self):
        g = WeightedGraph.from_edges([0, 1], [(0, 1), (0, 1), (1, 0)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            WeightedGraph.from_edges([0, 1], [(0, 0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            WeightedGraph.from_edges([0, 1], [(0, 5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError, match="negative or NaN"):
            WeightedGraph.from_edges([0], [], {0: -1.0})

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(GraphError, match="asymmetric"):
            WeightedGraph({0: [1], 1: []})

    def test_empty_graph(self):
        g = WeightedGraph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.max_degree == 0

    def test_zero_node_graph(self):
        g = WeightedGraph.empty(0)
        assert g.n == 0
        assert g.nodes == ()
        assert g.max_degree == 0
        assert g.max_weight() == 0.0

    def test_noncontiguous_ids(self):
        g = WeightedGraph.from_edges([3, 10, 42], [(3, 42)])
        assert g.nodes == (3, 10, 42)
        assert g.degree(10) == 0


class TestAccessors:
    def test_edges_sorted_unique(self):
        g = complete(4)
        edges = list(g.edges())
        assert edges == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]

    def test_inclusive_neighbors(self):
        g = path(3)
        assert g.inclusive_neighbors(1) == (0, 1, 2)
        assert g.inclusive_neighbors(0) == (0, 1)

    def test_degree_and_max_degree(self):
        g = path(4)
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.max_degree == 2

    def test_has_edge(self):
        g = path(3)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_weighted_degree(self):
        g = path(3).with_weights({0: 1, 1: 10, 2: 100})
        assert g.weighted_degree(1) == 101
        assert g.weighted_degree(0) == 10

    def test_total_weight_subset(self):
        g = path(3).with_weights({0: 1, 1: 10, 2: 100})
        assert g.total_weight([0, 2]) == 101
        assert g.total_weight() == 111

    def test_max_weight(self):
        g = path(3).with_weights({0: 1, 1: 10, 2: 100})
        assert g.max_weight() == 100

    def test_contains_len_iter(self):
        g = path(3)
        assert 2 in g
        assert 5 not in g
        assert len(g) == 3
        assert list(g) == [0, 1, 2]

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(path(2))

    def test_repr(self):
        assert "n=3" in repr(path(3))


class TestDerivedGraphs:
    def test_induced_subgraph_keeps_ids_weights(self):
        g = path(4).with_weights({0: 1, 1: 2, 2: 3, 3: 4})
        h = g.induced_subgraph([1, 2, 3])
        assert h.nodes == (1, 2, 3)
        assert h.weight(3) == 4
        assert h.m == 2

    def test_induced_subgraph_drops_cross_edges(self):
        g = path(4)
        h = g.induced_subgraph([0, 2])
        assert h.m == 0

    def test_induced_subgraph_unknown_node(self):
        with pytest.raises(GraphError):
            path(3).induced_subgraph([0, 9])

    def test_with_weights_does_not_mutate(self):
        g = path(2)
        h = g.with_weights({0: 5, 1: 6})
        assert g.weight(0) == 1.0
        assert h.weight(0) == 5.0
        assert h.m == g.m

    def test_with_unit_weights(self):
        g = path(2).with_weights({0: 5, 1: 6})
        assert g.with_unit_weights().total_weight() == 2.0

    def test_relabeled(self):
        g = WeightedGraph.from_edges([5, 9], [(5, 9)], {5: 1.5, 9: 2.5})
        h, mapping = g.relabeled()
        assert h.nodes == (0, 1)
        assert mapping == {5: 0, 9: 1}
        assert h.weight(mapping[9]) == 2.5

    def test_networkx_roundtrip(self):
        g = path(5).with_weights({i: float(i + 1) for i in range(5)})
        back = WeightedGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_equality(self):
        assert path(3) == path(3)
        assert path(3) != path(3).with_weights({0: 2, 1: 1, 2: 1})
        assert path(3) != complete(3)
        assert (path(3) == 42) is False

    def test_fingerprint_tracks_equality(self):
        assert path(3).fingerprint() == path(3).fingerprint()
        assert len(path(3).fingerprint()) == 64  # hex sha256
        assert (path(3).fingerprint()
                != path(3).with_weights({0: 2, 1: 1, 2: 1}).fingerprint())
        assert path(3).fingerprint() != complete(3).fingerprint()
        # Edgeless graphs with different node sets must differ too.
        from repro.graphs import empty

        assert empty(2).fingerprint() != empty(3).fingerprint()


class TestFingerprintInvariance:
    """Batch-cache-key correctness: the fingerprint depends only on graph
    content, never on construction order."""

    def _graph(self, nodes, edges, weights):
        return WeightedGraph.from_edges(nodes, edges, weights)

    def test_invariant_under_edge_insertion_order(self):
        nodes = [0, 1, 2, 3, 4]
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]
        weights = {v: float(v + 1) for v in nodes}
        fp = self._graph(nodes, edges, weights).fingerprint()
        assert self._graph(nodes, list(reversed(edges)), weights).fingerprint() == fp
        shuffled = [edges[i] for i in (3, 0, 5, 1, 4, 2)]
        assert self._graph(nodes, shuffled, weights).fingerprint() == fp
        flipped = [(v, u) for u, v in edges]
        assert self._graph(nodes, flipped, weights).fingerprint() == fp

    def test_invariant_under_node_insertion_order(self):
        edges = [(0, 2), (2, 7), (7, 9)]
        weights = {0: 1.0, 2: 2.0, 7: 3.0, 9: 4.0}
        fp = self._graph([0, 2, 7, 9], edges, weights).fingerprint()
        assert self._graph([9, 7, 2, 0], edges, weights).fingerprint() == fp

    def test_invariant_under_adjacency_dict_order(self):
        a = WeightedGraph({0: [1, 2], 1: [0], 2: [0]}, {0: 1.0, 1: 2.0, 2: 3.0})
        b = WeightedGraph({2: [0], 1: [0], 0: [2, 1]}, {2: 3.0, 1: 2.0, 0: 1.0})
        assert a.fingerprint() == b.fingerprint()

    def test_changes_when_a_single_weight_changes(self):
        nodes = [0, 1, 2, 3]
        edges = [(0, 1), (2, 3)]
        base = {v: 1.0 for v in nodes}
        fp = self._graph(nodes, edges, base).fingerprint()
        for v in nodes:
            bumped = {**base, v: 1.0 + 2**-40}
            assert self._graph(nodes, edges, bumped).fingerprint() != fp

    def test_changes_when_an_edge_moves(self):
        nodes = [0, 1, 2, 3]
        weights = {v: 1.0 for v in nodes}
        fp1 = self._graph(nodes, [(0, 1), (2, 3)], weights).fingerprint()
        fp2 = self._graph(nodes, [(0, 2), (1, 3)], weights).fingerprint()
        assert fp1 != fp2

    def test_duplicate_edges_collapse(self):
        nodes = [0, 1, 2]
        weights = {v: 1.0 for v in nodes}
        once = self._graph(nodes, [(0, 1)], weights).fingerprint()
        twice = self._graph(nodes, [(0, 1), (1, 0)], weights).fingerprint()
        assert once == twice


class TestMemoization:
    """Scalar statistics are cached on first use; derived graphs start
    with fresh caches (immutability makes the memo safe, sharing it
    across topology/weight changes would not be)."""

    def _graph(self):
        return WeightedGraph(
            {0: [1, 2], 1: [0, 2], 2: [0, 1], 3: []},
            {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0},
        )

    def test_memoized_values_are_stable(self):
        g = self._graph()
        assert g.max_degree == 2 and g.max_degree == 2
        assert g.total_weight() == 10.0 and g.total_weight() == 10.0
        assert g.nodes == (0, 1, 2, 3) and g.nodes is g.nodes
        assert g.fingerprint() == g.fingerprint()

    def test_total_weight_with_subset_bypasses_memo(self):
        g = self._graph()
        assert g.total_weight() == 10.0
        assert g.total_weight([0, 3]) == 5.0
        assert g.total_weight() == 10.0

    def test_induced_subgraph_gets_fresh_caches(self):
        g = self._graph()
        # Populate the parent's memo first; the subgraph must not inherit it.
        assert g.max_degree == 2
        assert g.total_weight() == 10.0
        sub = g.induced_subgraph([0, 1, 3])
        assert sub.max_degree == 1
        assert sub.total_weight() == 7.0
        assert sub.nodes == (0, 1, 3)
        assert sub.fingerprint() != g.fingerprint()

    def test_reweighted_graph_gets_fresh_caches(self):
        g = self._graph()
        assert g.total_weight() == 10.0
        assert g.fingerprint()
        h = g.with_weights({0: 5.0, 1: 5.0, 2: 5.0, 3: 5.0})
        assert h.total_weight() == 20.0
        assert h.max_degree == g.max_degree
        assert h.fingerprint() != g.fingerprint()
        u = g.with_unit_weights()
        assert u.total_weight() == 4.0
        # The original memo is untouched by the derived graphs.
        assert g.total_weight() == 10.0

    def test_csr_index_is_lazy_and_cached(self):
        g = self._graph()
        idx = g.csr
        assert idx is g.csr
        assert list(idx.ids) == [0, 1, 2, 3]
        assert idx.slot_of[3] == 3
        assert list(idx.degrees) == [2, 2, 2, 0]
