"""Unit tests for weight-assignment schemes."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    cycle,
    degree_proportional_weights,
    exponential_weights,
    gnp,
    integer_weights,
    path,
    polynomial_weights,
    skewed_heavy_set,
    star,
    uniform_weights,
    unit_weights,
)


def test_unit_weights():
    g = unit_weights(path(3).with_weights({0: 7, 1: 8, 2: 9}))
    assert g.total_weight() == 3.0


def test_uniform_weights_range():
    g = uniform_weights(cycle(50), 2.0, 3.0, seed=1)
    assert all(2.0 <= g.weight(v) < 3.0 for v in g.nodes)


def test_uniform_weights_reproducible():
    a = uniform_weights(cycle(10), seed=4)
    b = uniform_weights(cycle(10), seed=4)
    assert a == b


def test_integer_weights_integral_in_range():
    g = integer_weights(cycle(60), 17, seed=2)
    for v in g.nodes:
        w = g.weight(v)
        assert w == int(w)
        assert 1 <= w <= 17


def test_integer_weights_bad_wmax():
    with pytest.raises(GraphError):
        integer_weights(cycle(3), 0)


def test_polynomial_weights_scale():
    g = polynomial_weights(cycle(10), exponent=2.0, seed=3)
    assert g.max_weight() <= 100
    assert g.max_weight() >= 1


def test_exponential_weights_positive():
    g = exponential_weights(cycle(40), seed=5)
    assert all(g.weight(v) > 0 for v in g.nodes)


def test_degree_proportional():
    g = degree_proportional_weights(star(5))
    assert g.weight(0) == 6.0  # hub degree 5 + offset 1
    assert g.weight(1) == 2.0


def test_skewed_heavy_set_counts():
    g = skewed_heavy_set(gnp(100, 0.05, seed=6), fraction=0.05,
                         heavy=1000.0, light=1.0, seed=7)
    heavy = [v for v in g.nodes if g.weight(v) == 1000.0]
    light = [v for v in g.nodes if g.weight(v) == 1.0]
    assert len(heavy) == 5
    assert len(heavy) + len(light) == 100


def test_skewed_heavy_set_bad_fraction():
    with pytest.raises(GraphError):
        skewed_heavy_set(cycle(5), fraction=0.0)


def test_schemes_preserve_topology():
    g = gnp(30, 0.2, seed=8)
    for scheme in (
        unit_weights(g),
        uniform_weights(g, seed=1),
        integer_weights(g, 10, seed=1),
        exponential_weights(g, seed=1),
        degree_proportional_weights(g),
        skewed_heavy_set(g, seed=1),
    ):
        assert scheme.m == g.m
        assert scheme.nodes == g.nodes
