"""Chrome-trace export, phase tables, and round timelines."""

import json

import pytest

from repro.core import theorem2_maxis
from repro.graphs import gnp, uniform_weights
from repro.obs import (
    chrome_trace,
    phase_rows,
    render_phase_table,
    render_round_timeline,
    render_telemetry,
    rows_from_events,
    telemetry_summary,
)
from repro.simulator.metrics import SpanNode


@pytest.fixture(scope="module")
def boosting_run():
    """A real E3-style boosting run (Theorem 2 wraps Algorithm 1)."""
    g = uniform_weights(gnp(30, 0.12, seed=11), 1, 20, seed=12)
    return theorem2_maxis(g, 0.5, seed=11)


class TestChromeTrace:
    def test_structure_is_valid_and_json_serializable(self, boosting_run):
        doc = chrome_trace(boosting_run.metrics.span)
        json.dumps(doc)  # must not raise
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_root_duration_equals_run_rounds(self, boosting_run):
        doc = chrome_trace(boosting_run.metrics.span)
        root = doc["traceEvents"][0]
        assert root["name"] == "theorem2"
        assert root["dur"] == boosting_run.metrics.rounds

    def test_children_fit_inside_parent(self, boosting_run):
        doc = chrome_trace(boosting_run.metrics.span)
        by_tid = {}
        for ev in doc["traceEvents"]:
            by_tid.setdefault(ev["tid"], []).append(ev)
        root = doc["traceEvents"][0]
        for ev in doc["traceEvents"]:
            assert ev["ts"] + ev["dur"] <= root["ts"] + root["dur"]

    def test_sequential_children_abut(self):
        tree = SpanNode(name="root", rounds=5, children=(
            SpanNode(name="a", rounds=2),
            SpanNode(name="b", rounds=3),
        ))
        events = {e["name"]: e for e in chrome_trace(tree)["traceEvents"]}
        assert events["a"]["ts"] == 0 and events["a"]["dur"] == 2
        assert events["b"]["ts"] == 2 and events["b"]["dur"] == 3

    def test_parallel_child_starts_at_sibling_start(self):
        tree = SpanNode(name="root", rounds=7, children=(
            SpanNode(name="tree", rounds=4),
            SpanNode(name="pipe", rounds=7, mode="par"),
            SpanNode(name="flood", rounds=0),
        ))
        events = {e["name"]: e for e in chrome_trace(tree)["traceEvents"]}
        assert events["pipe"]["ts"] == events["tree"]["ts"] == 0
        assert events["flood"]["ts"] == 7


class TestPhaseTable:
    def test_rows_are_indented_and_share_labelled(self, boosting_run):
        rows = phase_rows(boosting_run.metrics.span)
        assert rows[0]["phase"] == "theorem2"
        assert rows[0]["share"] == "100.0%"
        assert any(r["phase"].startswith("  ") for r in rows[1:])

    def test_render_contains_phases(self, boosting_run):
        text = render_phase_table(boosting_run.metrics.span)
        assert "boost" in text
        assert "push[0]" in text
        assert "sample-H" in text


class TestRoundTimeline:
    def test_rows_from_jsonl_records(self):
        records = [
            {"type": "meta", "ignored": True},
            {"type": "event", "round": 0, "kind": "send", "node": 1,
             "detail": [2, 40]},
            {"type": "event", "round": 1, "kind": "drop", "node": 2,
             "detail": [1, 16]},
            {"type": "event", "round": 1, "kind": "halt", "node": 2,
             "detail": None},
            {"type": "round_profile", "round": 1, "compute_seconds": 0.25,
             "delivery_seconds": 0.5},
        ]
        rows = rows_from_events(records)
        assert [r["round"] for r in rows] == [0, 1]
        assert rows[0]["messages"] == 1 and rows[0]["bits"] == 40
        assert rows[1]["drops"] == 1 and rows[1]["bits"] == 16
        assert rows[1]["halts"] == 1
        text = render_round_timeline(rows)
        assert "round 1:" in text
        assert "1 dropped" in text
        assert "250.00ms compute" in text

    def test_row_cap(self):
        rows = [{"round": r, "messages": 0, "bits": 0} for r in range(10)]
        text = render_round_timeline(rows, max_rounds=4)
        assert "6 more rounds" in text

    def test_empty(self):
        assert render_round_timeline([]) == "(no rounds)"


class TestTelemetrySummary:
    RECORDS = [
        {"type": "meta"},  # no telemetry: ignored
        {"type": "job", "telemetry": {
            "runs": {"columnar": 2},
            "kernels": {"GhaffariMIS": {"runs": 2, "seconds": 0.5}},
            "fallbacks": [{"algorithm": "Foo", "reason": "no-kernel",
                           "count": 1, "detail": "no kernel for Foo"}],
            "stages": {"cache_lookup": 0.001},
        }},
        {"type": "job", "telemetry": {
            "runs": {"columnar": 1, "per-node": 1},
            "kernels": {"GhaffariMIS": {"runs": 1, "seconds": 0.25}},
            "fallbacks": [{"algorithm": "Foo", "reason": "no-kernel",
                           "count": 2}],
        }},
    ]

    def test_summary_sums_across_jobs(self):
        summary = telemetry_summary(self.RECORDS)
        assert summary["jobs_with_telemetry"] == 2
        assert summary["backend_runs"] == {"columnar": 3, "per-node": 1}
        assert summary["kernels"]["GhaffariMIS"] == {"runs": 3,
                                                     "seconds": 0.75}
        (fb,) = summary["fallbacks"]
        assert fb == {"algorithm": "Foo", "reason": "no-kernel",
                      "count": 3, "detail": "no kernel for Foo"}
        assert summary["stages"]["cache_lookup"]["count"] == 1

    def test_render_mentions_reasons_and_details(self):
        text = render_telemetry(self.RECORDS)
        assert "Foo [no-kernel]: 3" in text
        assert "no kernel for Foo" in text
        assert "GhaffariMIS: 3 runs" in text

    def test_render_without_telemetry_records(self):
        assert "no telemetry records" in render_telemetry([{"type": "meta"}])

    def test_batch_run_emits_telemetry_on_job_docs(self):
        from repro.graphs import uniform_weights as uw
        from repro.simulator.batch import BatchJob, batch_run
        from repro.simulator.instrument import install_outcome_emitter

        g = uw(gnp(14, 0.2, seed=1), 1, 9, seed=2)
        records = []
        with install_outcome_emitter(records.append):
            batch_run([BatchJob(g, "mis-det", seed=1)])
        summary = telemetry_summary(records)
        assert summary["jobs_with_telemetry"] == 1
        assert summary["backend_runs"].get("per-node", 0) >= 1
