"""Event sinks and the ambient instrumentation registry."""

import io
import json

import pytest

from repro.graphs import path, star
from repro.obs import (
    JsonlStreamSink,
    MetricRegistry,
    MultiSink,
    NullSink,
    RingBufferSink,
    RoundSeriesSink,
    TelemetrySink,
    install_sink,
)
from repro.simulator import run
from tests.test_simulator.test_runner import CountRounds, EchoNeighborSum


class TestNullSink:
    def test_swallows_everything(self):
        sink = NullSink()
        res = run(path(3), EchoNeighborSum, sink=sink)
        assert res.metrics.rounds == 1

    def test_does_not_request_profiling(self):
        # The runner only pays for perf_counter() when a sink implements
        # on_round_profile; NullSink must not.
        assert getattr(NullSink(), "on_round_profile", None) is None


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        sink = RingBufferSink(capacity=3)
        for r in range(7):
            sink.record(r, "send", 0, (1, 8))
        assert len(sink) == 3
        assert sink.evicted_events == 4
        assert [e.round_index for e in sink.events] == [4, 5, 6]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_tail_of_long_run(self):
        sink = RingBufferSink(capacity=5)
        run(path(4), lambda: CountRounds(10), sink=sink)
        rounds = [e.round_index for e in sink.events]
        assert rounds == sorted(rounds)
        assert rounds[-1] == 10  # the tail survived; the head was evicted
        assert sink.evicted_events > 0


class TestRoundSeriesSink:
    def test_rows_aggregate_traffic_and_wall_clock(self):
        sink = RoundSeriesSink()
        res = run(path(3), EchoNeighborSum, sink=sink)
        rows = sink.rows()
        assert [r["round"] for r in rows] == [0, 1]
        assert sum(r["messages"] for r in rows) == res.metrics.messages
        assert sum(r["halts"] for r in rows) == 3
        # Profiling was active: some wall-clock must have been recorded.
        assert sink.total_compute_seconds + sink.total_delivery_seconds > 0

    def test_drop_bits_charged_into_bit_totals(self):
        from repro.simulator import NodeAlgorithm

        class HaltingHub(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.halt("early")

            def on_round(self, ctx, inbox):
                if ctx.round_index == 1:
                    ctx.broadcast("ping")
                else:
                    ctx.halt(len(inbox))

        sink = RoundSeriesSink()
        res = run(star(3), HaltingHub, sink=sink)
        total_bits = sum(r["bits"] for r in sink.rows())
        assert total_bits == res.metrics.total_bits  # drops included
        assert sum(r["drops"] for r in sink.rows()) == 3


class TestJsonlStreamSink:
    def test_streams_events_and_profiles(self):
        buf = io.StringIO()
        with JsonlStreamSink(buf) as sink:
            run(path(3), EchoNeighborSum, sink=sink)
        records = [json.loads(ln) for ln in buf.getvalue().splitlines()]
        kinds = {r["type"] for r in records}
        assert kinds == {"event", "round_profile"}
        assert sink.records_written == len(records)

    def test_owns_and_closes_file(self, tmp_path):
        target = tmp_path / "t.jsonl"
        with JsonlStreamSink(str(target)) as sink:
            sink.write({"type": "meta", "x": 1})
        records = [json.loads(ln) for ln in target.read_text().splitlines()]
        assert records == [{"type": "meta", "x": 1}]

    def test_non_json_detail_stringified(self):
        buf = io.StringIO()
        JsonlStreamSink(buf).record(0, "halt", 1, detail=frozenset([2]))
        doc = json.loads(buf.getvalue())
        assert "2" in doc["detail"]


class TestMultiSink:
    def test_fans_out(self):
        ring = RingBufferSink(capacity=100)
        series = RoundSeriesSink()
        res = run(path(3), EchoNeighborSum, sink=MultiSink([ring, series]))
        assert len(ring) > 0
        assert sum(r["messages"] for r in series.rows()) == res.metrics.messages

    def test_only_profiled_members_get_profiles(self):
        null = NullSink()
        series = RoundSeriesSink()
        run(path(3), EchoNeighborSum, sink=MultiSink([null, series]))
        assert series.total_compute_seconds >= 0.0


class TestAmbientRegistry:
    def test_installed_sink_observes_inner_runs(self):
        series = RoundSeriesSink()
        with install_sink(series):
            res = run(path(3), EchoNeighborSum)
        assert sum(r["messages"] for r in series.rows()) == res.metrics.messages

    def test_uninstalled_after_context(self):
        series = RoundSeriesSink()
        with install_sink(series):
            pass
        run(path(3), EchoNeighborSum)
        assert series.rows() == []

    def test_composed_algorithm_streams_through_ambient_sink(self):
        from repro.core import theorem1_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(20, 0.15, seed=1), 1, 10, seed=2)
        ring = RingBufferSink(capacity=100_000)
        with install_sink(ring):
            theorem1_maxis(g, 0.5, seed=1)
        kinds = {e.kind for e in ring.events}
        assert "send" in kinds and "halt" in kinds


class TestTelemetrySink:
    def test_mirrors_events_into_registry(self):
        reg = MetricRegistry(namespace="t")
        sink = TelemetrySink(registry=reg)
        res = run(path(3), EchoNeighborSum, sink=sink)
        events = reg.get("sim_events_total")
        assert events.value(kind="send") == res.metrics.messages
        assert events.value(kind="halt") == 3
        assert reg.get("sim_bits_total").value() == res.metrics.total_bits
        # round profiles were delivered (the sink implements the hook)
        assert reg.get("sim_compute_seconds_total").value() > 0

    def test_defaults_to_global_registry(self):
        from repro.obs import global_registry, reset_global_registry

        reset_global_registry()
        try:
            run(path(3), EchoNeighborSum, sink=TelemetrySink())
            events = global_registry().get("sim_events_total")
            assert events is not None
            assert events.value(kind="send") > 0
        finally:
            reset_global_registry()

    def test_renders_in_prometheus_exposition(self):
        reg = MetricRegistry(namespace="t")
        run(path(3), EchoNeighborSum, sink=TelemetrySink(registry=reg))
        text = reg.render_prometheus()
        assert '# TYPE t_sim_events_total counter' in text
        assert 't_sim_events_total{kind="send"}' in text
