"""Span trees: attribution invariants, composition modes, serialization."""

import pickle

import pytest

from repro.obs import check_span, span, unattributed_rounds
from repro.obs.spans import leaf_metrics
from repro.simulator.metrics import RunMetrics, SpanNode


def _metrics(rounds=0, messages=0, bits=0, drops=0, drop_bits=0) -> RunMetrics:
    m = RunMetrics()
    m.rounds = rounds
    m.messages = messages
    m.total_bits = bits
    m.dropped_messages = drops
    m.dropped_bits = drop_bits
    return m


class TestSequentialComposition:
    def test_rounds_add_and_children_are_named(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=3, messages=10, bits=100), name="a")
            sp.add(_metrics(rounds=2, messages=5, bits=50), name="b")
        m = sp.metrics()
        assert m.rounds == 5
        assert m.messages == 15
        assert [c.name for c in m.span.children] == ["a", "b"]
        check_span(m.span)

    def test_unnamed_metrics_become_run_leaf(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=1))
        assert sp.metrics().span.children[0].name == "(run)"
        check_span(sp.metrics().span)

    def test_add_rounds_charges_leaf(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=2), name="work")
            sp.add_rounds(3, name="pop")
            sp.add_rounds(0, name="ignored")  # no-op
        m = sp.metrics()
        assert m.rounds == 5
        assert [c.name for c in m.span.children] == ["work", "pop"]
        check_span(m.span)


class TestParallelComposition:
    def test_parallel_rounds_max_traffic_adds(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=4, messages=10, bits=100), name="tree")
            sp.add_parallel(_metrics(rounds=7, messages=3, bits=30),
                            name="pipeline")
        m = sp.metrics()
        assert m.rounds == 7          # max, not 11
        assert m.messages == 13       # traffic still adds
        assert m.span.children[1].mode == "par"
        check_span(m.span)

    def test_parallel_shorter_than_prefix(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=9), name="long")
            sp.add_parallel(_metrics(rounds=2), name="overlapped")
            sp.add(_metrics(rounds=1), name="tail")
        # tail starts after max(9, 2) = 9.
        assert sp.metrics().rounds == 10
        check_span(sp.metrics().span)

    def test_parallel_after_zero_round_phase_keeps_invariant(self):
        # Regression: a zero-round sibling between the overlapped phases
        # used to desync the totals (merge_parallel maxed against the
        # whole prefix) from the fold's schedule (the par child starts at
        # the *previous sibling's* start) — check_span then failed with
        # rounds 3 != 5.
        with span("outer") as sp:
            sp.add(_metrics(rounds=3, messages=6), name="build")
            sp.add(_metrics(rounds=0), name="no-op")
            sp.add_parallel(_metrics(rounds=2, messages=4), name="shadow")
        m = sp.metrics()
        assert m.rounds == 5
        check_span(m.span)

    def test_parallel_overshooting_mid_schedule_keeps_invariant(self):
        # Same desync in the other direction: a par child longer than the
        # whole prefix, overlapping a sibling that did not start at 0.
        with span("outer") as sp:
            sp.add(_metrics(rounds=2), name="a")
            sp.add(_metrics(rounds=3), name="b")
            sp.add_parallel(_metrics(rounds=10), name="c")
        m = sp.metrics()
        assert m.rounds == 12        # c starts with b, at round 2
        check_span(m.span)

    def test_zero_round_parallel_golden_json(self):
        import json

        with span("pipeline") as sp:
            sp.add(_metrics(rounds=3, messages=6, bits=60), name="build")
            sp.add(_metrics(rounds=0), name="no-op")
            sp.add_parallel(_metrics(rounds=2, messages=4, bits=40),
                            name="shadow")
        doc = sp.metrics().span.to_dict()

        def strip_wall(obj):
            if isinstance(obj, dict):
                return {k: strip_wall(v) for k, v in obj.items()
                        if k != "wall_seconds"}
            if isinstance(obj, list):
                return [strip_wall(x) for x in obj]
            return obj

        assert json.dumps(strip_wall(doc), sort_keys=True) == (
            '{"children": [{"children": [], "dropped_bits": 0, '
            '"dropped_messages": 0, "messages": 6, "mode": "seq", '
            '"name": "build", "rounds": 3, "total_bits": 60}, '
            '{"children": [], "dropped_bits": 0, "dropped_messages": 0, '
            '"messages": 0, "mode": "seq", "name": "no-op", "rounds": 0, '
            '"total_bits": 0}, {"children": [], "dropped_bits": 0, '
            '"dropped_messages": 0, "messages": 4, "mode": "par", '
            '"name": "shadow", "rounds": 2, "total_bits": 40}], '
            '"dropped_bits": 0, "dropped_messages": 0, "messages": 10, '
            '"mode": "seq", "name": "pipeline", "rounds": 5, '
            '"total_bits": 100}'
        )


class TestAdoption:
    def test_instrumented_callee_tree_is_adopted_once(self):
        with span("inner") as inner:
            inner.add(_metrics(rounds=2, messages=4, bits=40), name="step")
        callee = inner.metrics()

        with span("outer") as sp:
            sp.add(callee)
            sp.add_rounds(1, name="announce")
        m = sp.metrics()
        assert m.rounds == 3
        child = m.span.children[0]
        assert child.name == "inner"
        assert child.children[0].name == "step"
        check_span(m.span)

    def test_renaming_wraps_instead_of_overwriting(self):
        with span("inner") as inner:
            inner.add(_metrics(rounds=2), name="step")
        with span("outer") as sp:
            sp.add(inner.metrics(), name="renamed")
        child = sp.metrics().span.children[0]
        assert child.name == "renamed"
        assert child.children[0].name == "inner"
        check_span(sp.metrics().span)

    def test_leaf_metrics_is_single_node(self):
        m = leaf_metrics(_metrics(rounds=3, messages=6, bits=60), "mis")
        assert m.span.name == "mis"
        assert m.span.children == ()
        assert m.span.rounds == 3
        # Totals unchanged by the wrapping.
        assert m.rounds == 3 and m.messages == 6


class TestInvariants:
    def test_check_span_catches_tampering(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=2), name="a")
        node = sp.metrics().span
        bad = SpanNode(name=node.name, rounds=node.rounds + 1,
                       messages=node.messages, total_bits=node.total_bits,
                       children=node.children)
        with pytest.raises(AssertionError, match="outer"):
            check_span(bad)

    def test_unattributed_rounds(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=2), name="a")
        assert unattributed_rounds(sp.metrics().span) == 0
        leaf = SpanNode(name="leaf", rounds=5)
        assert unattributed_rounds(leaf) == 0

    def test_drop_accounting_flows_through(self):
        with span("outer") as sp:
            sp.add(_metrics(rounds=1, messages=3, bits=30, drops=2,
                            drop_bits=16), name="a")
        node = sp.metrics().span
        assert node.dropped_messages == 2
        assert node.dropped_bits == 16
        check_span(node)


class TestSerialization:
    def _tree(self) -> RunMetrics:
        with span("outer") as sp:
            sp.add(_metrics(rounds=4, messages=10, bits=100), name="a")
            sp.add_parallel(_metrics(rounds=6), name="b")
        return sp.metrics()

    def test_dict_round_trip(self):
        m = self._tree()
        back = RunMetrics.from_dict(m.to_dict())
        assert back.span == m.span
        check_span(back.span)

    def test_pickle_round_trip(self):
        m = self._tree()
        assert pickle.loads(pickle.dumps(m)).span == m.span

    def test_span_excluded_from_determinism_signature(self):
        m = self._tree()
        bare = _metrics(rounds=m.rounds, messages=m.messages,
                        bits=m.total_bits)
        bare.max_message_bits = m.max_message_bits
        bare.dropped_messages = m.dropped_messages
        bare.dropped_bits = m.dropped_bits
        assert m.as_tuple() == bare.as_tuple()


class TestRealPipelines:
    def test_theorem1_phases_sum_to_rounds(self):
        from repro.core import theorem1_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(30, 0.12, seed=5), 1, 20, seed=6)
        result = theorem1_maxis(g, 0.5, seed=5)
        tree = result.metrics.span
        assert tree is not None and tree.name == "theorem1"
        assert tree.rounds == result.metrics.rounds
        check_span(tree)

    def test_theorem2_phases_sum_to_rounds(self):
        from repro.core import theorem2_maxis
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(30, 0.12, seed=7), 1, 20, seed=8)
        result = theorem2_maxis(g, 0.5, seed=7)
        tree = result.metrics.span
        assert tree is not None and tree.name == "theorem2"
        assert tree.rounds == result.metrics.rounds
        check_span(tree)

    def test_pipelined_coloring_has_parallel_child(self):
        from repro.coloring import pipelined_color_class_maxis
        from repro.coloring.greedy import greedy_coloring
        from repro.graphs import gnp, uniform_weights

        g = uniform_weights(gnp(25, 0.15, seed=9), 1, 10, seed=10)
        colors = greedy_coloring(g)
        result = pipelined_color_class_maxis(g, colors)
        tree = result.metrics.span
        modes = {c.name: c.mode for c in tree.children}
        assert modes["pipelined-sums"] == "par"
        assert tree.rounds == result.metrics.rounds
        check_span(tree)
