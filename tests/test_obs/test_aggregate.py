"""Sweep-level aggregation: percentiles, cells, JSONL round trips."""

import json

import pytest

from repro.obs import aggregate_jobs, aggregate_jsonl, percentile, read_jsonl


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile([1, 2, 3], 50) == 2.0

    def test_extremes(self):
        vals = [5, 1, 9, 3]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 9.0

    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_p95(self):
        vals = list(range(1, 101))
        assert percentile(vals, 95) == pytest.approx(95.05)


def _job(algorithm="thm2", fingerprint="abc", rounds=10, bits=100,
         seconds=0.5, weight=7.0, ok=True):
    return {
        "type": "job",
        "algorithm": algorithm,
        "graph": {"fingerprint": fingerprint},
        "ok": ok,
        "metrics": {"rounds": rounds, "total_bits": bits} if ok else None,
        "seconds": seconds,
        "weight": weight,
    }


class TestAggregateJobs:
    def test_groups_by_graph_and_algorithm(self):
        docs = [_job(rounds=10), _job(rounds=20),
                _job(algorithm="ranking", rounds=5),
                _job(fingerprint="xyz", rounds=7)]
        cells = aggregate_jobs(docs)
        assert set(cells) == {("abc", "thm2"), ("abc", "ranking"),
                              ("xyz", "thm2")}
        cell = cells[("abc", "thm2")]
        assert cell["jobs"] == cell["ok"] == 2
        assert cell["p50_rounds"] == 15.0

    def test_failures_counted_not_aggregated(self):
        docs = [_job(rounds=10), _job(ok=False)]
        cell = aggregate_jobs(docs)[("abc", "thm2")]
        assert cell["jobs"] == 2 and cell["ok"] == 1 and cell["failed"] == 1
        assert cell["p50_rounds"] == 10.0  # the failure contributes nothing

    def test_non_job_records_skipped(self):
        docs = [{"type": "meta"}, {"type": "event", "round": 0}, _job()]
        assert len(aggregate_jobs(docs)) == 1

    def test_label_fallback_for_experiments(self):
        doc = _job()
        doc["graph"] = {}
        doc["label"] = "gnp-dense"
        cells = aggregate_jobs([doc])
        assert ("gnp-dense", "thm2") in cells

    def test_mean_weight(self):
        docs = [_job(weight=4.0), _job(weight=8.0)]
        assert aggregate_jobs(docs)[("abc", "thm2")]["mean_weight"] == 6.0


class TestJsonlRoundTrip:
    def test_emit_then_aggregate(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        docs = [_job(rounds=r) for r in (10, 20, 30)]
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        cells = aggregate_jsonl(str(path))
        cell = cells[("abc", "thm2")]
        assert cell["jobs"] == 3
        assert cell["p50_rounds"] == 20.0
        assert cell["p95_rounds"] == pytest.approx(29.0)

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl(str(path)) == [{"a": 1}, {"b": 2}]

    def test_batch_emitted_stream_aggregates(self, tmp_path):
        """End-to-end: batch engine → ambient emitter → JSONL → cells."""
        from repro.graphs import gnp, uniform_weights
        from repro.obs import JsonlStreamSink
        from repro.simulator.batch import BatchJob, batch_run
        from repro.simulator.instrument import install_outcome_emitter

        g = uniform_weights(gnp(25, 0.12, seed=3), 1, 10, seed=4)
        jobs = [BatchJob(g, "ranking") for _ in range(4)]
        path = tmp_path / "emit.jsonl"
        with JsonlStreamSink(str(path)) as sink:
            with install_outcome_emitter(sink.write):
                result = batch_run(jobs, master_seed=0)
        cells = aggregate_jsonl(str(path))
        assert len(cells) == 1
        (cell,) = cells.values()
        assert cell["jobs"] == 4 and cell["failed"] == 0
        assert cell["graph"] == g.fingerprint()
        # The in-memory summary agrees with the JSONL round trip.
        summary_cell = result.summary()["cells"][0]
        assert summary_cell["p50_rounds"] == cell["p50_rounds"]
        assert summary_cell["p95_bits"] == cell["p95_bits"]


class TestReadJsonlFailsGracefully:
    def test_truncated_line_names_file_and_lineno(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"type": "job", "ok": true}\n{"type": "jo')
        with pytest.raises(ValueError, match=r"cut\.jsonl:2: malformed JSONL"):
            read_jsonl(str(path))

    def test_garbage_line_mentions_truncation_hint(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="truncated write"):
            read_jsonl(str(path))

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "scalars.jsonl"
        path.write_text('{"a": 1}\n42\n')
        with pytest.raises(ValueError, match=r"scalars\.jsonl:2: expected a "
                                             "JSON object per line, got int"):
            read_jsonl(str(path))

    def test_empty_file_returns_no_records(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_jsonl(str(path)) == []

    def test_valid_prefix_not_returned_on_error(self, tmp_path):
        # All-or-nothing: a truncated file must not silently aggregate a
        # partial sweep.
        path = tmp_path / "partial.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c":\n')
        with pytest.raises(ValueError, match="partial"):
            read_jsonl(str(path))
