"""The metric registry, reservoir, traces, and run collectors."""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.aggregate import percentile
from repro.obs.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ReservoirSample,
    RunTelemetry,
    TraceContext,
    collect_run_telemetry,
    current_collector,
    global_registry,
    new_trace_id,
    record_backend_run,
    record_fallback,
    record_kernel_time,
    reset_global_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("jobs_total", "help")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labelled_series_are_independent(self):
        c = Counter("ops_total", "help", labelnames=("kind",))
        c.inc(kind="read")
        c.inc(5, kind="write")
        assert c.value(kind="read") == 1.0
        assert c.value(kind="write") == 5.0

    def test_negative_increment_rejected(self):
        c = Counter("jobs_total", "help")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_wrong_labels_rejected(self):
        c = Counter("ops_total", "help", labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(direction="up")

    def test_render_escapes_label_values(self):
        c = Counter("ops_total", "help", labelnames=("detail",))
        c.inc(detail='say "hi"\nplease\\now')
        line = [ln for ln in c.render() if not ln.startswith("#")][0]
        assert '\\"hi\\"' in line
        assert "\\n" in line
        assert "\n" not in line


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth", "help")
        g.set(4)
        g.set(2)
        assert g.value() == 2.0

    def test_render(self):
        g = Gauge("depth", "help")
        g.set(3)
        assert g.render() == ["# HELP depth help", "# TYPE depth gauge",
                              "depth 3"]


class TestHistogram:
    def test_observe_lands_in_correct_bucket(self):
        h = Histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)   # <= 0.1
        h.observe(0.5)    # <= 1.0
        h.observe(100.0)  # +Inf only
        (entry,) = h.series()
        assert entry["buckets"] == [("0.1", 1), ("1", 2), ("10", 2),
                                    ("+Inf", 3)]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(100.55)

    def test_boundary_value_is_inclusive(self):
        h = Histogram("lat", "help", buckets=(1.0,))
        h.observe(1.0)
        (entry,) = h.series()
        assert entry["buckets"][0] == ("1", 1)

    def test_bucket_counts_are_monotone(self):
        h = Histogram("lat", "help")
        for i in range(200):
            h.observe(0.0005 * (i + 1))
        (entry,) = h.series()
        counts = [count for _le, count in entry["buckets"]]
        assert counts == sorted(counts)
        assert counts[-1] == entry["count"] == 200

    def test_render_has_bucket_sum_count(self):
        h = Histogram("lat", "help", buckets=(0.5,))
        h.observe(0.25)
        text = "\n".join(h.render())
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert 'lat_sum 0.25' in text
        assert 'lat_count 1' in text

    def test_rejects_empty_and_infinite_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", "help", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", "help", buckets=(1.0, float("inf")))

    def test_default_buckets_cover_service_regime(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0


class TestMetricRegistry:
    def test_namespace_prefixes_names(self):
        reg = MetricRegistry(namespace="svc")
        c = reg.counter("jobs_total", "help")
        assert c.name == "svc_jobs_total"
        assert reg.get("jobs_total") is c

    def test_registration_is_idempotent(self):
        reg = MetricRegistry()
        assert reg.counter("a", "help") is reg.counter("a", "help")

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a", "help")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a", "help")

    def test_label_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a", "help", labelnames=("x",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("a", "help", labelnames=("y",))

    def test_snapshot_shape(self):
        reg = MetricRegistry(namespace="svc")
        reg.counter("jobs_total", "jobs").inc(3)
        reg.histogram("lat", "latency", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"svc_jobs_total", "svc_lat"}
        assert snap["svc_jobs_total"]["kind"] == "counter"
        assert snap["svc_jobs_total"]["series"][0]["value"] == 3.0
        assert snap["svc_lat"]["kind"] == "histogram"

    def test_prometheus_exposition_is_well_formed(self):
        reg = MetricRegistry(namespace="svc")
        reg.counter("jobs_total", "jobs run").inc(2)
        reg.gauge("depth", "queue depth").set(1)
        reg.histogram("lat_seconds", "latency").observe(0.003)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert (line.startswith("# HELP ") or line.startswith("# TYPE ")
                    or re.match(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \S+$',
                                line)), line
        assert "svc_jobs_total 2" in text
        assert "svc_depth 1" in text
        assert 'svc_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "svc_lat_seconds_count 1" in text


class TestReservoirSample:
    def test_fills_then_stays_bounded(self):
        r = ReservoirSample(capacity=10)
        for i in range(100):
            r.observe(float(i))
        assert len(r) == 10
        assert r.observed_total == 100

    def test_small_streams_are_kept_exactly(self):
        r = ReservoirSample(capacity=100)
        for i in range(20):
            r.observe(float(i))
        assert sorted(r.values()) == [float(i) for i in range(20)]

    def test_sample_is_not_a_newest_window(self):
        # The deque this replaces would contain only the last `capacity`
        # values (all large); a uniform reservoir keeps early ones too.
        r = ReservoirSample(capacity=64, rng_seed=7)
        for i in range(10_000):
            r.observe(float(i))
        assert min(r.values()) < 10_000 - 64

    def test_percentiles_unbiased_on_uniform_stream(self):
        r = ReservoirSample(capacity=1024, rng_seed=3)
        for i in range(50_000):
            r.observe(i / 50_000)
        assert percentile(r.values(), 50) == pytest.approx(0.5, abs=0.05)
        assert percentile(r.values(), 95) == pytest.approx(0.95, abs=0.05)

    def test_empty_percentile_is_zero(self):
        assert percentile(ReservoirSample().values(), 95) == 0.0


class TestTraceContext:
    def test_trace_ids_are_unique_hex(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 32
        int(a, 16)

    def test_stage_accumulates(self):
        ctx = TraceContext()
        ctx.add_stage("solve", 0.1)
        ctx.add_stage("solve", 0.2)
        assert ctx.stages["solve"] == pytest.approx(0.3)

    def test_stage_context_manager_times(self):
        ctx = TraceContext()
        with ctx.stage("serialize"):
            pass
        assert ctx.stages["serialize"] >= 0.0

    def test_to_doc_includes_primary_only_when_set(self):
        follower = TraceContext(primary_trace_id="abc")
        assert follower.to_doc()["primary_trace_id"] == "abc"
        assert "primary_trace_id" not in TraceContext().to_doc()


class TestRunCollectors:
    def setup_method(self):
        reset_global_registry()

    def teardown_method(self):
        reset_global_registry()

    def test_no_collector_is_a_noop(self):
        assert current_collector() is None
        record_backend_run("per-node")  # must not raise

    def test_collector_receives_records(self):
        with collect_run_telemetry() as col:
            record_backend_run("columnar")
            record_kernel_time("GhaffariMIS", 0.25)
            record_fallback("Foo", "no-kernel", "no kernel for Foo")
        doc = col.to_doc()
        assert doc["runs"] == {"columnar": 1}
        assert doc["kernels"]["GhaffariMIS"]["runs"] == 1
        assert doc["fallbacks"] == [{"algorithm": "Foo",
                                     "reason": "no-kernel", "count": 1,
                                     "detail": "no kernel for Foo"}]

    def test_innermost_collector_wins(self):
        with collect_run_telemetry() as outer:
            with collect_run_telemetry() as inner:
                record_backend_run("columnar")
            record_backend_run("per-node")
        assert inner.backend_runs == {"columnar": 1}
        assert outer.backend_runs == {"per-node": 1}

    def test_collectors_are_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_collector()

        with collect_run_telemetry():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert current_collector() is not None
        assert seen["other"] is None

    def test_fallbacks_reach_global_registry(self):
        record_fallback("Foo", "faults")
        record_fallback("Foo", "faults")
        counter = global_registry().get("fleet_fallback_total")
        assert counter.value(algorithm="Foo", reason="faults") == 2.0

    def test_kernel_time_reaches_global_histogram(self):
        record_kernel_time("GhaffariMIS", 0.01)
        hist = global_registry().get("fleet_kernel_seconds")
        assert hist.count(kernel="GhaffariMIS") == 1

    def test_empty_collector_doc_is_empty(self):
        with collect_run_telemetry() as col:
            pass
        assert col.to_doc() == {}

    def test_run_telemetry_counts(self):
        t = RunTelemetry()
        t.record_fallback("A", "kernel")
        t.record_fallback("A", "kernel")
        t.record_fallback("B", "dense-state")
        assert t.fallback_count == 3
