"""Integration-level tests of the synchronous runner."""

from typing import Any, Mapping

import pytest

from repro.exceptions import BandwidthExceeded, ProtocolError, RoundLimitExceeded
from repro.graphs import cycle, empty, path, star
from repro.simulator import (
    BandwidthPolicy,
    Network,
    NodeAlgorithm,
    NodeContext,
    Trace,
    run,
)


class HaltImmediately(NodeAlgorithm):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt(ctx.node_id)

    def on_round(self, ctx, inbox):  # pragma: no cover
        raise AssertionError("should never run a round")


class EchoNeighborSum(NodeAlgorithm):
    """Round 1: receive ids broadcast at start; output their sum."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(ctx.node_id)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        ctx.halt(sum(inbox.values()))


class CountRounds(NodeAlgorithm):
    def __init__(self, rounds: int):
        self._target = rounds

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(0)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index >= self._target:
            ctx.halt(ctx.round_index)
        else:
            ctx.broadcast(0)


class NeverHalt(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        pass


class BigTalker(NodeAlgorithm):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast("x" * 10_000)

    def on_round(self, ctx, inbox):
        ctx.halt(None)


class TestBasics:
    def test_zero_round_halt(self):
        res = run(path(3), HaltImmediately)
        assert res.metrics.rounds == 0
        assert res.outputs == {0: 0, 1: 1, 2: 2}

    def test_one_round_exchange(self):
        res = run(path(3), EchoNeighborSum)
        assert res.metrics.rounds == 1
        assert res.outputs == {0: 1, 1: 0 + 2, 2: 1}

    def test_round_counting(self):
        res = run(cycle(4), lambda: CountRounds(5))
        assert res.metrics.rounds == 5
        assert all(v == 5 for v in res.outputs.values())

    def test_message_accounting(self):
        res = run(path(3), EchoNeighborSum)
        # start broadcasts: degree sum = 2m = 4 messages.
        assert res.metrics.messages == 4
        assert res.metrics.total_bits > 0
        assert res.metrics.max_message_bits >= 2

    def test_empty_graph_zero_nodes(self):
        res = run(empty(0), HaltImmediately)
        assert res.outputs == {}

    def test_round_limit(self):
        with pytest.raises(RoundLimitExceeded):
            run(path(2), NeverHalt, max_rounds=10)

    def test_reproducible_with_seed(self):
        class RandomOutput(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(float(ctx.rng.random()))

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        a = run(cycle(5), RandomOutput, seed=42)
        b = run(cycle(5), RandomOutput, seed=42)
        c = run(cycle(5), RandomOutput, seed=43)
        assert a.outputs == b.outputs
        assert a.outputs != c.outputs

    def test_per_node_streams_differ(self):
        class RandomOutput(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(float(ctx.rng.random()))

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        res = run(cycle(5), RandomOutput, seed=1)
        assert len(set(res.outputs.values())) == 5


class TestBandwidth:
    def test_strict_congest_raises(self):
        with pytest.raises(BandwidthExceeded):
            run(path(2), BigTalker)

    def test_audit_mode_records(self):
        res = run(path(2), BigTalker, policy=BandwidthPolicy.congest(strict=False))
        assert len(res.metrics.violations) == 2
        v = res.metrics.violations[0]
        assert v.bits == 8 + 80_000  # length prefix + body
        assert v.budget == 32 * 8
        assert v.round_index == 0

    def test_local_model_allows_big_messages(self):
        res = run(path(2), BigTalker, policy=BandwidthPolicy.local())
        assert not res.metrics.violations

    def test_n_bound_default_power_of_two(self):
        res = run(path(5), HaltImmediately)
        assert res.n_bound == 8

    def test_explicit_n_bound(self):
        res = run(Network.of(path(5), n_bound=1000), HaltImmediately)
        assert res.n_bound == 1000


class TestProtocolViolations:
    def test_send_to_non_neighbor(self):
        class BadSender(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(2, "hi")  # 0 and 2 not adjacent in P3

            def on_round(self, ctx, inbox):
                ctx.halt(None)

        with pytest.raises(ProtocolError, match="non-neighbour"):
            run(path(3), BadSender)

    def test_double_send_same_round(self):
        class DoubleSender(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.degree:
                    ctx.send(ctx.neighbors[0], 1)
                    ctx.send(ctx.neighbors[0], 2)

            def on_round(self, ctx, inbox):  # pragma: no cover
                ctx.halt(None)

        with pytest.raises(ProtocolError, match="twice"):
            run(path(2), DoubleSender)

    def test_send_after_halt(self):
        class HaltThenSend(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(None)
                ctx.broadcast("late")

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        with pytest.raises(ProtocolError, match="after halting"):
            run(path(2), HaltThenSend)

    def test_double_halt(self):
        class DoubleHalt(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(1)
                ctx.halt(2)

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        with pytest.raises(ProtocolError, match="halted twice"):
            run(path(2), DoubleHalt)


class TestDelivery:
    def test_messages_to_halted_nodes_dropped(self):
        class Hub(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.halt("early")

            def on_round(self, ctx, inbox):
                # Leaves send to the (halted) hub; nothing comes back.
                if ctx.round_index == 1:
                    ctx.broadcast("ping")
                else:
                    ctx.halt(len(inbox))

        res = run(star(3), Hub)
        assert res.outputs[0] == "early"
        assert all(res.outputs[v] == 0 for v in (1, 2, 3))

    def test_drops_are_counted_and_traced(self):
        class Hub(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.halt("early")

            def on_round(self, ctx, inbox):
                if ctx.round_index == 1:
                    ctx.broadcast("ping")
                else:
                    ctx.halt(len(inbox))

        trace = Trace()
        res = run(star(3), Hub, trace=trace)
        m = res.metrics
        # Three leaves each ping the already-halted hub exactly once.
        assert m.dropped_messages == 3
        assert m.messages == 3                      # drops stay charged
        assert m.dropped_bits == m.total_bits
        assert m.delivered_bits == 0                # charged == delivered + dropped
        drops = trace.events_of("drop")
        assert len(drops) == 3
        assert all(e.detail[0] == 0 for e in drops)  # all addressed to the hub
        assert trace.events_of("send") == []

    def test_delivered_messages_are_not_drops(self):
        class LastWords(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.broadcast("bye")
                    ctx.halt(None)

            def on_round(self, ctx, inbox):
                ctx.halt(list(inbox.values()))

        res = run(path(2), LastWords)
        # Node 0 halts in round 0 but its message still arrives in round 1:
        # delivery happened, so nothing is dropped.
        assert res.metrics.dropped_messages == 0
        assert res.metrics.delivered_bits == res.metrics.total_bits

    def test_halting_round_messages_still_delivered(self):
        class LastWords(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.broadcast("bye")
                    ctx.halt(None)

            def on_round(self, ctx, inbox):
                ctx.halt(list(inbox.values()))

        res = run(path(2), LastWords)
        assert res.outputs[1] == ["bye"]

    def test_trace_records_sends_and_halts(self):
        trace = Trace()
        run(path(3), EchoNeighborSum, trace=trace)
        assert len(trace.events_of("send")) == 4
        assert len(trace.events_of("halt")) == 3
        assert trace.events_of("halt", node=1)[0].round_index == 1


class ListBroadcaster(NodeAlgorithm):
    """Round 1: halt with the exact payload object the wire delivered."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast([1, [2, 3]])

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        ctx.halt(next(iter(inbox.values())))


class TestCodecCheck:
    def test_lists_arrive_as_tuples(self):
        # The binary codec has no list/tuple distinction: everything
        # decodes as a tuple, which is what real receivers would see.
        res = run(path(2), ListBroadcaster, codec_check=True)
        assert res.outputs[0] == (1, (2, 3))
        assert all(isinstance(v, tuple) for v in res.outputs.values())

    def test_default_mode_passes_objects_through(self):
        # Fast path: the in-memory object is handed over untouched, so a
        # list stays a list (the codec divergence codec_check exists for).
        res = run(path(2), ListBroadcaster)
        assert res.outputs[0] == [1, [2, 3]]
        assert all(isinstance(v, list) for v in res.outputs.values())

    def test_codec_check_preserves_accounting(self):
        plain = run(path(3), EchoNeighborSum)
        checked = run(path(3), EchoNeighborSum, codec_check=True)
        assert checked.metrics.as_tuple() == plain.metrics.as_tuple()
        assert checked.outputs == plain.outputs


class TestEventOrdering:
    """Within one round the trace reads: round marker, wire events
    (send/drop), then halts — matching the synchronous semantics where
    all messages are on the wire before halting is observable."""

    class Mixed(NodeAlgorithm):
        # path(3): hub 0 halts at start; 1 and 2 both broadcast in round
        # 1, and 2 halts in the same round => round 1 mixes drops (to 0
        # and to the just-halted 2), a delivered send (2 -> 1), and a halt.
        def on_start(self, ctx):
            if ctx.node_id == 0:
                ctx.halt("early")

        def on_round(self, ctx, inbox):
            if ctx.round_index == 1:
                ctx.broadcast("m")
                if ctx.node_id == 2:
                    ctx.halt("done")
            else:
                ctx.halt(len(inbox))

    def _rounds(self, trace: Trace):
        by_round: dict = {}
        for e in trace.events:
            by_round.setdefault(e.round_index, []).append(e.kind)
        return by_round

    def test_round_marker_first_then_wire_then_halts(self):
        trace = Trace()
        run(path(3), self.Mixed, trace=trace)
        by_round = self._rounds(trace)

        assert by_round[0] == ["halt"]  # node 0, before any wire traffic
        r1 = by_round[1]
        assert r1[0] == "round"
        wire = [k for k in r1 if k in ("send", "drop")]
        assert sorted(wire) == ["drop", "drop", "send"]
        # No wire event may appear after the first halt of the round.
        assert r1.index("halt") > max(
            i for i, k in enumerate(r1) if k in ("send", "drop")
        )
        assert r1[-1] == "halt"

    def test_same_round_drop_targets(self):
        trace = Trace()
        res = run(path(3), self.Mixed, trace=trace)
        drops = trace.events_of("drop")
        # 1 -> 0 (halted in round 0) and 1 -> 2 (halted this round).
        assert sorted(e.detail[0] for e in drops) == [0, 2]
        assert all(e.node == 1 for e in drops)
        assert res.metrics.dropped_messages == 2
        # 2 -> 1 was delivered: node 1 sees exactly one message in round 2.
        assert res.outputs[1] == 1
