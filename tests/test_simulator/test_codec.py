"""Tests for the concrete payload codec and its agreement with the cost model."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.exceptions import ProtocolError
from repro.simulator import payload_bits
from repro.simulator.codec import decode_payload, encode_payload, encoded_bits


def payloads():
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 60), max_value=2 ** 60),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    )
    return st.recursive(
        scalars,
        lambda inner: st.lists(inner, max_size=6).map(tuple),
        max_leaves=12,
    )


class TestRoundTrip:
    @given(payloads())
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, payload):
        assert decode_payload(encode_payload(payload)) == _tupled(payload)

    def test_examples(self):
        for p in (None, True, False, 0, -1, 12345, 3.75, "héllo", (),
                  (1, (2.5, "x"), None)):
            assert decode_payload(encode_payload(p)) == _tupled(p)

    def test_negative_zero_int(self):
        assert decode_payload(encode_payload(-0)) == 0

    def test_huge_int_rejected(self):
        with pytest.raises(ProtocolError):
            encode_payload(1 << 70)

    def test_unsupported_type(self):
        with pytest.raises(ProtocolError):
            encode_payload({"a": 1})


class TestCostModelAgreement:
    @given(payloads())
    @settings(max_examples=200, deadline=None)
    def test_charged_bits_track_real_encoding(self, payload):
        """The accounting model stays within a small constant factor of the
        real self-delimiting encoding (so CONGEST conclusions transfer)."""
        charged = payload_bits(payload)
        real = encoded_bits(payload)
        # Real encoding adds tags/length prefixes; model adds none for
        # scalars. Both directions bounded.
        assert real <= 4 * charged + 32
        assert charged <= 4 * real + 32

    def test_int_scaling_matches(self):
        small = encoded_bits(3)
        large = encoded_bits(2 ** 40)
        assert large - small == pytest.approx(40, abs=3)


def _tupled(payload):
    if isinstance(payload, (list, tuple)):
        return tuple(_tupled(p) for p in payload)
    return payload


class TestWireDelivery:
    def test_mis_identical_under_codec_roundtrip(self):
        """Running with on-the-wire encoding changes nothing — every
        protocol in the library sends codec-clean payloads."""
        from repro.graphs import gnp
        from repro.mis import LubyMIS
        from repro.simulator import run

        g = gnp(60, 0.1, seed=9)
        plain = run(g, LubyMIS, seed=4)
        checked = run(g, LubyMIS, seed=4, codec_check=True)
        assert plain.outputs == checked.outputs

    def test_good_nodes_protocol_codec_clean(self):
        from repro.core import GoodNodesProtocol
        from repro.graphs import gnp, uniform_weights
        from repro.simulator import run

        g = uniform_weights(gnp(40, 0.15, seed=10), 1, 10, seed=11)
        plain = run(g, GoodNodesProtocol, seed=1)
        checked = run(g, GoodNodesProtocol, seed=1, codec_check=True)
        assert plain.outputs == checked.outputs
