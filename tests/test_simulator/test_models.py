"""Unit tests for communication models and bandwidth policies."""

from repro.simulator import BandwidthPolicy, CommunicationModel


def test_local_is_unbounded():
    assert BandwidthPolicy.local().budget_bits(10 ** 6) == -1


def test_congest_budget_scales_with_log_n():
    p = BandwidthPolicy.congest(factor=32)
    assert p.budget_bits(2 ** 10) == 32 * 10
    assert p.budget_bits(2 ** 20) == 32 * 20


def test_congest_budget_word_floor():
    # Tiny networks still admit one 8-bit-log word (weights are doubles).
    p = BandwidthPolicy.congest(factor=4)
    assert p.budget_bits(1) == 32
    assert p.budget_bits(2) == 32
    assert p.budget_bits(2 ** 8) == 32
    assert p.budget_bits(2 ** 9) == 36


def test_default_policy_is_strict_congest():
    p = BandwidthPolicy()
    assert p.model is CommunicationModel.CONGEST
    assert p.strict


def test_congest_constructor_options():
    p = BandwidthPolicy.congest(factor=8, strict=False)
    assert p.factor == 8
    assert not p.strict


def test_policy_is_frozen():
    import dataclasses
    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        BandwidthPolicy().factor = 1  # type: ignore[misc]
