"""Unit tests for per-node randomness derivation."""

import numpy as np

from repro.simulator import derive_seed, spawn_node_rngs


def test_spawn_reproducible():
    a = spawn_node_rngs(7, [0, 1, 2])
    b = spawn_node_rngs(7, [0, 1, 2])
    assert [r.random() for r in a.values()] == [r.random() for r in b.values()]


def test_spawn_order_invariant():
    a = spawn_node_rngs(7, [2, 0, 1])
    b = spawn_node_rngs(7, [0, 1, 2])
    assert a[0].random() == b[0].random()


def test_streams_are_distinct():
    rngs = spawn_node_rngs(3, list(range(10)))
    draws = {v: r.random() for v, r in rngs.items()}
    assert len(set(draws.values())) == 10


def test_different_seeds_differ():
    a = spawn_node_rngs(1, [0])
    b = spawn_node_rngs(2, [0])
    assert a[0].random() != b[0].random()


def test_accepts_seed_sequence():
    ss = np.random.SeedSequence(5)
    rngs = spawn_node_rngs(ss, [0, 1])
    assert len(rngs) == 2


def test_derive_seed_distinct_phases():
    s0 = derive_seed(9, 0)
    s1 = derive_seed(9, 1)
    r0 = np.random.default_rng(s0).random()
    r1 = np.random.default_rng(s1).random()
    assert r0 != r1


def test_derive_seed_reproducible():
    a = np.random.default_rng(derive_seed(9, 3)).random()
    b = np.random.default_rng(derive_seed(9, 3)).random()
    assert a == b
