"""Tests for the batch-execution engine (simulator/batch.py)."""

import json
import os

import pytest

from repro.core import assert_independent
from repro.graphs import gnp, star, uniform_weights
from repro.simulator import (
    BatchJob,
    batch_run,
    derive_job_seeds,
)
from repro.registry import algorithm_registry
from repro.simulator.batch import job_cache_key
from repro.simulator.models import BandwidthPolicy


def _fail_on_even_seed(graph, seed=None, **params):
    """Module-level (hence picklable) algorithm that fails half the time."""
    if seed % 2 == 0:
        raise RuntimeError(f"planted failure for seed {seed}")
    from repro.core import boppana_is

    return boppana_is(graph, seed=seed)


@pytest.fixture(scope="module")
def graph():
    return uniform_weights(gnp(50, 0.08, seed=3), 1, 20, seed=4)


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        a = derive_job_seeds(7, 16)
        assert a == derive_job_seeds(7, 16)
        assert len(set(a)) == 16

    def test_prefix_stable(self):
        # Job i's seed does not depend on how many jobs follow it.
        assert derive_job_seeds(7, 16)[:4] == derive_job_seeds(7, 4)

    def test_explicit_seed_wins(self, graph):
        res = batch_run([BatchJob(graph, "ranking", seed=123)], master_seed=0)
        assert res.outcomes[0].seed == 123


class TestDeterminism:
    def test_parallel_matches_serial(self, graph):
        jobs = [BatchJob(graph, "ranking") for _ in range(8)]
        serial = batch_run(jobs, master_seed=42, n_jobs=1)
        parallel = batch_run(jobs, master_seed=42, n_jobs=4)
        assert serial.signature() == parallel.signature()
        assert serial.total_bits == parallel.total_bits
        assert serial.mean_rounds == parallel.mean_rounds

    def test_outputs_are_valid_solutions(self, graph):
        res = batch_run([BatchJob(graph, "ranking") for _ in range(4)],
                        master_seed=1, n_jobs=2)
        for outcome in res.outcomes:
            assert outcome.ok
            assert_independent(graph, set(outcome.independent_set))
            assert outcome.weight == pytest.approx(
                graph.total_weight(outcome.independent_set)
            )

    def test_master_seed_changes_results(self, graph):
        jobs = [BatchJob(graph, "ranking") for _ in range(6)]
        a = batch_run(jobs, master_seed=1)
        b = batch_run(jobs, master_seed=2)
        assert [o.seed for o in a.outcomes] != [o.seed for o in b.outcomes]


class TestFailureCapture:
    def test_one_crash_does_not_kill_the_sweep(self, graph):
        jobs = [BatchJob(graph, _fail_on_even_seed, seed=s, label=f"s{s}")
                for s in (1, 2, 3, 4)]
        res = batch_run(jobs, n_jobs=2)
        assert res.jobs == 4
        assert len(res.failures) == 2
        assert len(res.completed) == 2
        failed = {o.seed for o in res.failures}
        assert failed == {2, 4}
        assert "planted failure" in res.failures[0].error
        assert res.failures[0].label in ("s2", "s4")

    def test_unknown_algorithm_is_captured(self, graph):
        res = batch_run([BatchJob(graph, "no-such-algorithm")])
        assert not res.outcomes[0].ok
        assert "no-such-algorithm" in res.outcomes[0].error

    def test_summary_lists_errors(self, graph):
        res = batch_run([BatchJob(graph, _fail_on_even_seed, seed=2)])
        summary = res.summary()
        assert summary["failed"] == 1
        assert summary["errors"][0]["seed"] == 2
        json.dumps(summary)  # must be JSON-clean for the CLI


class TestCache:
    def test_warm_cache_skips_completed_jobs(self, graph, tmp_path):
        jobs = [BatchJob(graph, "ranking") for _ in range(5)]
        cache = str(tmp_path / "cache")
        cold = batch_run(jobs, master_seed=9, cache_dir=cache)
        assert cold.cached_jobs == 0
        warm = batch_run(jobs, master_seed=9, cache_dir=cache)
        assert warm.cached_jobs == 5
        assert warm.signature() == cold.signature()

    def test_cache_key_separates_seeds_and_policies(self, graph):
        job = BatchJob(graph, "ranking")
        assert job_cache_key(job, 1, None) != job_cache_key(job, 2, None)
        assert (job_cache_key(job, 1, None)
                != job_cache_key(job, 1, BandwidthPolicy.local()))

    def test_cache_key_separates_graphs(self, tmp_path):
        a = uniform_weights(star(6), 1, 5, seed=1)
        b = a.with_weights({v: a.weight(v) + 1 for v in a.nodes})
        job_a, job_b = BatchJob(a, "ranking"), BatchJob(b, "ranking")
        assert job_cache_key(job_a, 3, None) != job_cache_key(job_b, 3, None)

    def test_failures_are_not_cached(self, graph, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = [BatchJob(graph, _fail_on_even_seed, seed=2)]
        batch_run(jobs, cache_dir=cache)
        rerun = batch_run(jobs, cache_dir=cache)
        assert rerun.cached_jobs == 0  # failed job was recomputed
        assert not rerun.outcomes[0].ok

    def test_corrupt_entry_is_recomputed(self, graph, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = [BatchJob(graph, "ranking", seed=5)]
        first = batch_run(jobs, cache_dir=cache)
        entries = os.listdir(cache)
        assert len(entries) == 1
        with open(os.path.join(cache, entries[0]), "w") as fh:
            fh.write("{ not json")
        again = batch_run(jobs, cache_dir=cache)
        assert again.cached_jobs == 0
        assert again.signature() == first.signature()


class TestAggregates:
    def test_result_statistics(self, graph):
        res = batch_run([BatchJob(graph, "ranking") for _ in range(3)],
                        master_seed=5)
        rounds = [o.metrics.rounds for o in res.outcomes]
        assert res.mean_rounds == pytest.approx(sum(rounds) / 3)
        assert res.max_rounds == max(rounds)
        assert res.total_bits == sum(o.metrics.total_bits for o in res.outcomes)
        merged = res.metrics_parallel()
        assert merged.rounds == max(rounds)      # sweep runs side by side
        assert merged.total_bits == res.total_bits

    def test_registry_covers_cli_algorithms(self):
        from repro.cli import _algorithms

        assert set(algorithm_registry()) == set(_algorithms())


class TestObservability:
    def test_span_trees_ship_back_from_workers(self, graph):
        from repro.obs import check_span

        jobs = [BatchJob(graph, "thm2", params={"eps": 0.5})
                for _ in range(2)]
        res = batch_run(jobs, master_seed=1, n_jobs=2)
        for o in res.outcomes:
            assert o.metrics.span is not None
            assert o.metrics.span.name == "theorem2"
            assert o.metrics.span.rounds == o.metrics.rounds
            check_span(o.metrics.span)

    def test_span_survives_the_disk_cache(self, graph, tmp_path):
        jobs = [BatchJob(graph, "thm2", params={"eps": 0.5})]
        cache = str(tmp_path / "cache")
        cold = batch_run(jobs, master_seed=2, cache_dir=cache)
        warm = batch_run(jobs, master_seed=2, cache_dir=cache)
        assert warm.outcomes[0].cached
        assert warm.outcomes[0].metrics.span == cold.outcomes[0].metrics.span

    def test_summary_reports_percentile_cells(self, graph):
        res = batch_run([BatchJob(graph, "ranking") for _ in range(5)],
                        master_seed=3)
        cells = res.summary()["cells"]
        assert len(cells) == 1
        cell = cells[0]
        assert cell["algorithm"] == "ranking"
        assert cell["jobs"] == cell["ok"] == 5
        assert cell["p50_rounds"] <= cell["p95_rounds"]
        assert cell["p50_seconds"] > 0.0

    def test_outcome_emitter_receives_graph_identity(self, graph):
        from repro.simulator.instrument import install_outcome_emitter

        seen = []
        with install_outcome_emitter(seen.append):
            batch_run([BatchJob(graph, "ranking") for _ in range(3)],
                      master_seed=4)
        assert len(seen) == 3
        assert [d["index"] for d in seen] == [0, 1, 2]
        for doc in seen:
            assert doc["type"] == "job"
            assert doc["graph"]["fingerprint"] == graph.fingerprint()
            assert doc["graph"]["n"] == graph.n
            assert doc["metrics"]["rounds"] >= 1

    def test_no_emission_without_emitter(self, graph):
        # Plain runs must not pay for (or crash on) emission plumbing.
        res = batch_run([BatchJob(graph, "ranking")], master_seed=5)
        assert res.outcomes[0].ok


class TestBinaryCacheTier:
    """The ``<key>.bin`` tier in front of ``<key>.json``: written for
    large chosen sets, read first, torn entries fall through."""

    def _run_with_threshold(self, graph, tmp_path, monkeypatch, threshold):
        monkeypatch.setenv("REPRO_CACHE_BINARY_MIN", str(threshold))
        cache = str(tmp_path / "cache")
        jobs = [BatchJob(graph, "ranking") for _ in range(3)]
        cold = batch_run(jobs, master_seed=9, cache_dir=cache)
        return cache, jobs, cold

    def test_binary_entries_written_above_threshold(self, graph, tmp_path,
                                                    monkeypatch):
        cache, jobs, cold = self._run_with_threshold(
            graph, tmp_path, monkeypatch, 1)
        bins = [f for f in os.listdir(cache) if f.endswith(".bin")]
        jsons = [f for f in os.listdir(cache) if f.endswith(".json")]
        assert len(bins) == len(jsons) == 3

    def test_small_outcomes_stay_json_only(self, graph, tmp_path,
                                           monkeypatch):
        cache, _, _ = self._run_with_threshold(
            graph, tmp_path, monkeypatch, 10**6)
        assert not any(f.endswith(".bin") for f in os.listdir(cache))

    def test_binary_tier_roundtrip_is_byte_identical(self, graph, tmp_path,
                                                     monkeypatch):
        cache, jobs, cold = self._run_with_threshold(
            graph, tmp_path, monkeypatch, 1)
        warm = batch_run(jobs, master_seed=9, cache_dir=cache)
        assert warm.cached_jobs == 3
        for a, b in zip(cold.outcomes, warm.outcomes):
            da, db = a.to_doc(), b.to_doc()
            assert json.dumps(da, sort_keys=True) == json.dumps(
                db, sort_keys=True)

    def test_torn_binary_entry_falls_through_to_json(self, graph, tmp_path,
                                                     monkeypatch):
        cache, jobs, cold = self._run_with_threshold(
            graph, tmp_path, monkeypatch, 1)
        for name in os.listdir(cache):
            if name.endswith(".bin"):
                path = os.path.join(cache, name)
                data = open(path, "rb").read()
                with open(path, "wb") as fh:
                    fh.write(data[: len(data) // 2])  # torn write
        warm = batch_run(jobs, master_seed=9, cache_dir=cache)
        assert warm.cached_jobs == 3  # JSON tier served every job
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert json.dumps(a.to_doc(), sort_keys=True) == json.dumps(
                b.to_doc(), sort_keys=True)


class TestGraphRefJobs:
    """BatchJob.graph may be a GraphRef: workers attach the shared
    store entry instead of unpickling the whole graph per job."""

    def test_ref_jobs_match_graph_jobs(self, graph, tmp_path):
        from repro.graphs.store import GraphStore

        with GraphStore(tmp_path / "graphs") as store:
            ref = store.put(graph)
            by_graph = batch_run(
                [BatchJob(graph, "ranking") for _ in range(4)],
                master_seed=5)
            by_ref = batch_run(
                [BatchJob(ref, "ranking") for _ in range(4)],
                master_seed=5)
            for a, b in zip(by_graph.outcomes, by_ref.outcomes):
                da, db = a.to_doc(), b.to_doc()
                # The ref path adds a graph_attach stage; everything
                # else — the report proper — must be byte-identical.
                (da.get("stages") or {}).pop("graph_attach", None)
                (db.get("stages") or {}).pop("graph_attach", None)
                da.pop("seconds", None), db.pop("seconds", None)
                da["metrics"].pop("span", None)
                db["metrics"].pop("span", None)
                assert json.dumps(da, sort_keys=True) == json.dumps(
                    db, sort_keys=True)

    def test_ref_jobs_share_cache_keys_with_graph_jobs(self, graph,
                                                       tmp_path):
        from repro.graphs.store import GraphStore

        with GraphStore(tmp_path / "graphs") as store:
            ref = store.put(graph)
            assert (job_cache_key(BatchJob(graph, "ranking"), 3, None)
                    == job_cache_key(BatchJob(ref, "ranking"), 3, None))

    def test_ref_jobs_across_processes(self, graph, tmp_path):
        from repro.graphs.store import GraphStore

        with GraphStore(tmp_path / "graphs") as store:
            ref = store.put(graph)
            serial = batch_run([BatchJob(ref, "ranking")
                                for _ in range(4)], master_seed=7, n_jobs=1)
            parallel = batch_run([BatchJob(ref, "ranking")
                                  for _ in range(4)], master_seed=7,
                                 n_jobs=2)
            assert ([sorted(o.independent_set) for o in serial.outcomes]
                    == [sorted(o.independent_set)
                        for o in parallel.outcomes])
