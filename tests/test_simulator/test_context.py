"""Unit tests for NodeContext in isolation."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.simulator.context import NodeContext


@pytest.fixture
def ctx() -> NodeContext:
    return NodeContext(
        node_id=0,
        neighbors=(1, 2),
        weight=3.5,
        rng=np.random.default_rng(0),
        n_bound=16,
    )


def test_exposed_knowledge(ctx):
    assert ctx.node_id == 0
    assert ctx.neighbors == (1, 2)
    assert ctx.degree == 2
    assert ctx.weight == 3.5
    assert ctx.n_bound == 16
    assert ctx.round_index == 0


def test_send_queues_payload(ctx):
    ctx.send(1, (1, 2))
    assert ctx._drain_outbox() == {1: (1, 2)}
    # Drained: outbox empty again.
    assert ctx._drain_outbox() == {}


def test_broadcast_sends_to_all(ctx):
    ctx.broadcast("m")
    assert ctx._drain_outbox() == {1: "m", 2: "m"}


def test_send_invalid_target(ctx):
    with pytest.raises(ProtocolError):
        ctx.send(9, "m")


def test_send_twice_same_target(ctx):
    ctx.send(1, "a")
    with pytest.raises(ProtocolError):
        ctx.send(1, "b")


def test_send_invalid_payload_type(ctx):
    with pytest.raises(ProtocolError):
        ctx.send(1, {"bad": 1})


def test_halt_records_output(ctx):
    assert not ctx.halted
    ctx.halt("done")
    assert ctx.halted
    assert ctx.output == "done"


def test_send_after_halt_rejected(ctx):
    ctx.halt(None)
    with pytest.raises(ProtocolError):
        ctx.send(1, "late")


def test_advance_round(ctx):
    ctx._advance_round()
    ctx._advance_round()
    assert ctx.round_index == 2
