"""Unit tests for payload bit accounting."""

import pytest

from repro.exceptions import ProtocolError
from repro.simulator import payload_bits, validate_payload


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_ints(self):
        assert payload_bits(0) == 2  # sign + 1 magnitude bit
        assert payload_bits(1) == 2
        assert payload_bits(2) == 3

    def test_int_growth_is_logarithmic(self):
        assert payload_bits(2 ** 20) == 1 + 21
        assert payload_bits(2 ** 40) == 1 + 41

    def test_negative_int(self):
        assert payload_bits(-5) == payload_bits(5)

    def test_float(self):
        assert payload_bits(3.14) == 64

    def test_str(self):
        assert payload_bits("ab") == 8 + 16
        assert payload_bits("") == 8  # length prefix

    def test_tuple_framing(self):
        assert payload_bits((True, False)) == 8 + (2 + 1) + (2 + 1)
        assert payload_bits([]) == 8

    def test_nested(self):
        inner = 8 + (2 + 2)          # (1,)
        assert payload_bits(((1,),)) == 8 + 2 + inner

    def test_unsupported_type(self):
        with pytest.raises(ProtocolError, match="unsupported"):
            payload_bits({"a": 1})


class TestValidatePayload:
    def test_scalars_ok(self):
        for p in (None, True, 7, 2.5, "x"):
            validate_payload(p)

    def test_sequences_ok(self):
        validate_payload((1, (2, "a"), [None]))

    def test_dict_rejected(self):
        with pytest.raises(ProtocolError):
            validate_payload({"k": 1})

    def test_set_rejected(self):
        with pytest.raises(ProtocolError):
            validate_payload({1, 2})

    def test_nested_bad_element(self):
        with pytest.raises(ProtocolError):
            validate_payload((1, object()))
