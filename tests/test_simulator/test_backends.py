"""The pluggable execution-backend layer.

Pins three things:

* selection — ``run(backend=...)``, ambient :func:`install_backend`,
  name normalization, and custom backend objects;
* equivalence — for every protocol with a fleet kernel, the columnar
  backend's outputs *and* metrics match the per-node reference exactly,
  including on empty / edgeless / isolated-node graphs;
* fallback — faults, event sinks, codec checks, unregistered programs,
  and kernel :class:`FleetFallback` all silently reach the per-node
  scheduler with unchanged results.
"""

import pytest

from repro.coloring.random_trial import RandomTrialColoring
from repro.core.good_nodes import GoodNodesProtocol
from repro.core.sparsify import SamplingProtocol
from repro.graphs import gnp
from repro.graphs.weighted_graph import WeightedGraph
from repro.graphs.weights import integer_weights
from repro.mis.deterministic import LocalMinimaMIS
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.luby import LubyMIS
from repro.simulator.backends import (
    BACKEND_NAMES,
    PerNodeBackend,
    get_backend,
    normalize_backend_name,
)
from repro.simulator.instrument import ambient_backend, install_backend
from repro.simulator.models import BandwidthPolicy
from repro.simulator.runner import run
from repro.simulator.tracing import Trace


def _graph(n=30, p=0.15, seed=5):
    return integer_weights(gnp(n, p, seed=seed), 50, seed=seed + 1)


FACTORIES = [
    GoodNodesProtocol,
    SamplingProtocol,
    lambda: SamplingProtocol(lamb=1.5, uniform_only=True),
    LubyMIS,
    GhaffariMIS,
    LocalMinimaMIS,
    RandomTrialColoring,
]

GRAPHS = [
    WeightedGraph.empty(0),                    # no nodes at all
    WeightedGraph.empty(5),                    # edgeless
    _graph(1, 0.0, seed=1),                    # single node
    WeightedGraph.from_edges(
        [0, 3, 9], [(0, 3)]),                  # isolated node besides an edge
    _graph(),                                  # general gnp
]


def _signature(res):
    return (res.outputs, res.metrics.to_dict(), res.n_bound)


def _equivalent(graph, factory, seed=7, **kwargs):
    base = run(graph, factory, seed=seed, **kwargs)
    col = run(graph, factory, seed=seed, backend="columnar", **kwargs)
    assert _signature(col) == _signature(base)
    return base, col


class TestSelection:
    def test_normalize_defaults_to_per_node(self):
        assert normalize_backend_name(None) == "per-node"
        assert normalize_backend_name("") == "per-node"

    def test_normalize_known_names(self):
        for name in BACKEND_NAMES:
            assert normalize_backend_name(name) == name
        assert normalize_backend_name(" Columnar ") == "columnar"

    def test_normalize_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            normalize_backend_name("gpu")

    def test_normalize_accepts_instances(self):
        assert normalize_backend_name(PerNodeBackend()) == "per-node"

    def test_get_backend_caches_singletons(self):
        assert get_backend("columnar") is get_backend("columnar")
        assert get_backend(None).name == "per-node"

    def test_get_backend_passes_through_custom_objects(self):
        class Custom:
            name = "custom"

            def execute(self, *a, **k):  # pragma: no cover - never called
                raise AssertionError

        c = Custom()
        assert get_backend(c) is c

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run(_graph(6), LocalMinimaMIS, seed=0, backend="gpu")

    def test_install_backend_is_scoped(self):
        assert ambient_backend() is None
        with install_backend("columnar"):
            assert ambient_backend() == "columnar"
            with install_backend("per-node"):
                assert ambient_backend() == "per-node"
            assert ambient_backend() == "columnar"
        assert ambient_backend() is None

    def test_explicit_backend_beats_ambient(self):
        # A bespoke backend proves which path executed.
        calls = []

        class Probe:
            name = "probe"

            def execute(self, network, factory, **kwargs):
                calls.append(1)
                return PerNodeBackend().execute(network, factory, **kwargs)

        with install_backend("columnar"):
            run(_graph(8), LocalMinimaMIS, seed=0, backend=Probe())
        assert calls == [1]


class TestEquivalence:
    @pytest.mark.parametrize("fi", range(len(FACTORIES)))
    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_outputs_and_metrics_match(self, fi, gi):
        _equivalent(GRAPHS[gi], FACTORIES[fi])

    @pytest.mark.parametrize("fi", range(len(FACTORIES)))
    def test_matches_across_seeds(self, fi):
        g = _graph(24, 0.2, seed=9)
        for seed in (0, 1, 123):
            _equivalent(g, FACTORIES[fi], seed=seed)

    def test_registry_algorithms_match_under_ambient_backend(self):
        from repro.registry import algorithm_registry

        g = _graph(40, 0.1, seed=3)
        for name, fn in sorted(algorithm_registry().items()):
            base = fn(g, seed=11)
            with install_backend("columnar"):
                col = fn(g, seed=11)
            assert sorted(col.independent_set) == sorted(base.independent_set), name
            assert col.metrics.as_tuple() == base.metrics.as_tuple(), name


class TestFallback:
    def test_sinks_force_per_node(self):
        # Sinks need per-message events, which only the reference path
        # emits; the columnar backend must hand over, not go silent.
        g = _graph(12, 0.3, seed=2)
        t1, t2 = Trace(), Trace()
        run(g, LocalMinimaMIS, seed=4, trace=t1)
        run(g, LocalMinimaMIS, seed=4, trace=t2, backend="columnar")
        assert [e.kind for e in t2.events] == [e.kind for e in t1.events]
        assert t2.events  # and there were events to see

    def test_faults_force_per_node(self):
        from repro.faults import MessageLoss

        g = _graph(14, 0.3, seed=6)
        base = run(g, LubyMIS, seed=4, faults=MessageLoss(0.5))
        col = run(g, LubyMIS, seed=4, faults=MessageLoss(0.5),
                  backend="columnar")
        assert _signature(col) == _signature(base)
        assert col.metrics.fault_dropped_messages > 0

    def test_codec_check_forces_per_node(self):
        g = _graph(10, 0.3, seed=8)
        _equivalent(g, GoodNodesProtocol, codec_check=True)

    def test_unregistered_program_falls_back(self):
        from repro.simulator.algorithm import NodeAlgorithm

        class Noop(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(output=True)

            def on_round(self, ctx, inbox):  # pragma: no cover
                ctx.halt(output=True)

        _equivalent(_graph(9, 0.2, seed=3), Noop)

    def test_tight_budget_falls_back_to_reference_raise(self):
        from repro.exceptions import BandwidthExceeded

        g = _graph(10, 0.4, seed=5)
        # factor=1 gives an 8-bit budget; Luby's (tag, value) pairs need
        # ~25 bits, so the kernel defers and the reference path raises.
        policy = BandwidthPolicy.congest(factor=1, strict=True)
        with pytest.raises(BandwidthExceeded):
            run(g, LubyMIS, seed=0, policy=policy, backend="columnar")


class TestFallbackReasons:
    """Every columnar→per-node handover is a first-class telemetry
    signal: counted per (algorithm, reason), never silent."""

    def _reasons(self, graph, algorithm, **run_kwargs):
        from repro.obs.telemetry import collect_run_telemetry

        with collect_run_telemetry() as col:
            run(graph, algorithm, backend="columnar", **run_kwargs)
        return col

    def test_fleet_fallback_carries_a_reason(self):
        from repro.fleet.base import FleetFallback

        assert FleetFallback().reason == "kernel"
        assert FleetFallback("why", reason="faults").reason == "faults"

    def test_sinks_reason(self):
        col = self._reasons(_graph(12, 0.3, seed=2), LocalMinimaMIS,
                            seed=4, trace=Trace())
        assert list(col.fallbacks) == [("LocalMinimaMIS", "sinks")]

    def test_faults_reason(self):
        from repro.faults import MessageLoss

        col = self._reasons(_graph(14, 0.3, seed=6), LubyMIS, seed=4,
                            faults=MessageLoss(0.5))
        assert list(col.fallbacks) == [("LubyMIS", "faults")]

    def test_codec_check_reason(self):
        col = self._reasons(_graph(10, 0.3, seed=8), GoodNodesProtocol,
                            seed=7, codec_check=True)
        assert list(col.fallbacks) == [("GoodNodesProtocol", "codec-check")]

    def test_no_kernel_reason_includes_detail(self):
        from repro.simulator.algorithm import NodeAlgorithm

        class Noop(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.halt(output=True)

            def on_round(self, ctx, inbox):  # pragma: no cover
                ctx.halt(output=True)

        col = self._reasons(_graph(9, 0.2, seed=3), Noop, seed=7)
        assert list(col.fallbacks) == [("Noop", "no-kernel")]

    def test_over_budget_reason(self):
        policy = BandwidthPolicy.congest(factor=1, strict=False)
        col = self._reasons(_graph(10, 0.4, seed=5), LubyMIS, seed=0,
                            policy=policy)
        assert ("LubyMIS", "over-budget") in col.fallbacks

    def test_successful_kernel_records_no_fallback_and_times_kernel(self):
        col = self._reasons(_graph(), GhaffariMIS, seed=7)
        assert col.fallbacks == {}
        assert col.kernels["GhaffariMIS"]["runs"] == 1
        assert col.kernels["GhaffariMIS"]["seconds"] > 0
        assert col.backend_runs == {"columnar": 1}

    def test_per_node_backend_counts_runs_without_fallbacks(self):
        from repro.obs.telemetry import collect_run_telemetry

        with collect_run_telemetry() as col:
            run(_graph(), GhaffariMIS, seed=7)
        assert col.backend_runs == {"per-node": 1}
        assert col.fallbacks == {}
        assert col.kernels == {}


class TestBatchAndCache:
    def test_job_cache_key_distinguishes_backends(self):
        from repro.simulator.batch import BatchJob, job_cache_key

        g = _graph(10, 0.2, seed=1)
        per = BatchJob(g, "mis-det", seed=3)
        explicit = BatchJob(g, "mis-det", seed=3, backend="per-node")
        col = BatchJob(g, "mis-det", seed=3, backend="columnar")
        assert job_cache_key(per, 3, None) == job_cache_key(explicit, 3, None)
        assert job_cache_key(col, 3, None) != job_cache_key(per, 3, None)

    def test_cross_backend_requests_miss_each_others_cache(self, tmp_path):
        from repro.simulator.batch import BatchJob, run_job

        g = _graph(16, 0.2, seed=2)
        cache = str(tmp_path)
        first = run_job(BatchJob(g, "mis-det", seed=5), cache_dir=cache)
        assert not first.cached
        # Same computation through the other backend: a fresh cell, not
        # a hit on the per-node entry ...
        col = run_job(BatchJob(g, "mis-det", seed=5, backend="columnar"),
                      cache_dir=cache)
        assert not col.cached
        # ... yet byte-identical results, and each cell replays warm.
        assert col.signature()[2:] == first.signature()[2:]
        assert run_job(BatchJob(g, "mis-det", seed=5),
                       cache_dir=cache).cached
        assert run_job(BatchJob(g, "mis-det", seed=5, backend="columnar"),
                       cache_dir=cache).cached

    def test_backend_name_reaches_algorithm_label(self):
        from repro.simulator.batch import BatchJob

        job = BatchJob(_graph(6), "mis-det", backend="columnar")
        assert job.algorithm_name == "mis-det@columnar"

    def test_solve_reports_byte_identical_across_backends(self):
        from repro.api import solve

        g = _graph(30, 0.12, seed=4)
        a = solve(g, "thm8", seed=9)
        b = solve(g, "thm8", seed=9, backend="columnar")
        assert a.to_json() == b.to_json()
