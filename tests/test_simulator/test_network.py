"""Unit tests for Network and metric plumbing."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import path
from repro.simulator import Network, RunMetrics, default_n_bound
from repro.simulator.metrics import BandwidthViolation


class TestNetwork:
    def test_default_bound_powers_of_two(self):
        assert default_n_bound(1) == 2
        assert default_n_bound(2) == 2
        assert default_n_bound(3) == 4
        assert default_n_bound(1000) == 1024

    def test_of_wraps_graph(self):
        net = Network.of(path(5))
        assert net.n_bound == 8
        assert net.graph.n == 5

    def test_of_rejects_small_bound(self):
        with pytest.raises(GraphError):
            Network.of(path(5), n_bound=3)


class TestRunMetrics:
    def test_record_message(self):
        m = RunMetrics()
        m.record_message(10)
        m.record_message(30)
        assert m.messages == 2
        assert m.total_bits == 40
        assert m.max_message_bits == 30

    def test_merge_adds_rounds_and_traffic(self):
        a = RunMetrics(rounds=3, messages=5, total_bits=50, max_message_bits=20)
        b = RunMetrics(rounds=2, messages=1, total_bits=9, max_message_bits=9,
                       violations=[BandwidthViolation(0, 1, 2, 99, 10)])
        c = a.merge(b)
        assert c.rounds == 5
        assert c.messages == 6
        assert c.total_bits == 59
        assert c.max_message_bits == 20
        assert len(c.violations) == 1
        # merge does not mutate inputs
        assert a.rounds == 3 and b.rounds == 2

    def test_merge_parallel_takes_max_rounds(self):
        a = RunMetrics(rounds=7, messages=5, total_bits=50, max_message_bits=20)
        b = RunMetrics(rounds=2, messages=1, total_bits=9, max_message_bits=9,
                       violations=[BandwidthViolation(0, 1, 2, 99, 10)])
        c = a.merge_parallel(b)
        assert c.rounds == 7          # concurrent phases: slowest dominates
        assert c.messages == 6        # traffic still adds
        assert c.total_bits == 59
        assert c.max_message_bits == 20
        assert len(c.violations) == 1
        assert a.rounds == 7 and b.rounds == 2  # inputs unchanged

    def test_record_drop_reconciles_bits(self):
        m = RunMetrics()
        m.record_message(10)
        m.record_message(30)
        m.record_drop(30)
        assert m.dropped_messages == 1
        assert m.dropped_bits == 30
        assert m.total_bits == 40           # drops stay charged
        assert m.delivered_bits == 10       # charged == delivered + dropped

    def test_merge_accumulates_drops(self):
        a = RunMetrics(rounds=1, dropped_messages=2, dropped_bits=16)
        b = RunMetrics(rounds=1, dropped_messages=1, dropped_bits=8)
        assert a.merge(b).dropped_messages == 3
        assert a.merge(b).dropped_bits == 24
        assert a.merge_parallel(b).dropped_bits == 24

    def test_add_rounds(self):
        m = RunMetrics(rounds=1)
        m.add_rounds(4)
        assert m.rounds == 5

    def test_as_tuple(self):
        m = RunMetrics(rounds=1, messages=2, total_bits=3, max_message_bits=4,
                       dropped_messages=1, dropped_bits=2)
        assert m.as_tuple() == (1, 2, 3, 4, 1, 2, 0)

    def test_dict_round_trip(self):
        m = RunMetrics(rounds=2, messages=3, total_bits=30, max_message_bits=16,
                       dropped_messages=1, dropped_bits=8,
                       violations=[BandwidthViolation(1, 0, 2, 99, 10)])
        back = RunMetrics.from_dict(m.to_dict())
        assert back == m
