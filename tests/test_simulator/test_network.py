"""Unit tests for Network and metric plumbing."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import path
from repro.simulator import Network, RunMetrics, default_n_bound
from repro.simulator.metrics import BandwidthViolation


class TestNetwork:
    def test_default_bound_powers_of_two(self):
        assert default_n_bound(1) == 2
        assert default_n_bound(2) == 2
        assert default_n_bound(3) == 4
        assert default_n_bound(1000) == 1024

    def test_of_wraps_graph(self):
        net = Network.of(path(5))
        assert net.n_bound == 8
        assert net.graph.n == 5

    def test_of_rejects_small_bound(self):
        with pytest.raises(GraphError):
            Network.of(path(5), n_bound=3)


class TestRunMetrics:
    def test_record_message(self):
        m = RunMetrics()
        m.record_message(10)
        m.record_message(30)
        assert m.messages == 2
        assert m.total_bits == 40
        assert m.max_message_bits == 30

    def test_merge_adds_rounds_and_traffic(self):
        a = RunMetrics(rounds=3, messages=5, total_bits=50, max_message_bits=20)
        b = RunMetrics(rounds=2, messages=1, total_bits=9, max_message_bits=9,
                       violations=[BandwidthViolation(0, 1, 2, 99, 10)])
        c = a.merge(b)
        assert c.rounds == 5
        assert c.messages == 6
        assert c.total_bits == 59
        assert c.max_message_bits == 20
        assert len(c.violations) == 1
        # merge does not mutate inputs
        assert a.rounds == 3 and b.rounds == 2

    def test_add_rounds(self):
        m = RunMetrics(rounds=1)
        m.add_rounds(4)
        assert m.rounds == 5

    def test_as_tuple(self):
        m = RunMetrics(rounds=1, messages=2, total_bits=3, max_message_bits=4)
        assert m.as_tuple() == (1, 2, 3, 4, 0)
