"""Unit tests for the trace facility."""

from repro.simulator import Trace, TraceEvent


def test_record_and_filter():
    t = Trace()
    t.record(0, "send", 1, (2, 10))
    t.record(1, "halt", 1, True)
    t.record(1, "send", 2, (1, 5))
    assert len(t) == 3
    assert len(t.events_of("send")) == 2
    assert len(t.events_of("send", node=2)) == 1
    assert t.events_of("halt")[0].detail is True


def test_max_events_cap():
    t = Trace(max_events=2)
    for i in range(5):
        t.record(i, "send", 0)
    assert len(t) == 2


def test_truncation_is_never_silent():
    t = Trace(max_events=2)
    for i in range(5):
        t.record(i, "send", 0, (1, 8))
    assert t.dropped_events == 3
    assert "truncated" in t.render_timeline()
    assert "3 events" in t.render_timeline()


def test_untruncated_trace_reports_zero_dropped():
    t = Trace(max_events=10)
    t.record(0, "send", 0, (1, 8))
    assert t.dropped_events == 0
    assert "truncated" not in t.render_timeline()


def test_event_is_frozen():
    import dataclasses

    import pytest

    e = TraceEvent(0, "send", 1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        e.node = 5  # type: ignore[misc]


class TestTimeline:
    def test_empty(self):
        assert Trace().render_timeline() == "(no events)"

    def test_renders_rounds_and_halts(self):
        from repro.graphs import path
        from repro.simulator import run
        from tests.test_simulator.test_runner import EchoNeighborSum

        t = Trace()
        run(path(3), EchoNeighborSum, trace=t)
        text = t.render_timeline()
        assert "round 0:" in text
        assert "msgs" in text
        assert "halted:" in text

    def test_truncation(self):
        t = Trace()
        for r in range(10):
            t.record(r, "send", 0, (1, 8))
        text = t.render_timeline(max_rounds=3)
        assert "more rounds" in text

    def test_dropped_message_bits_counted_in_round_totals(self):
        t = Trace()
        t.record(1, "send", 0, (1, 100))
        t.record(1, "drop", 2, (0, 50))
        line = [ln for ln in t.render_timeline().splitlines()
                if ln.startswith("round 1:")][0]
        # Dropped messages were charged on the wire: 100 + 50 bits.
        assert "150 bits" in line
        assert "1 dropped" in line
