"""Tests for Algorithm 7 (RandMIS) — the Theorem 4 reduction."""

import pytest

from repro.core import boppana_is, is_maximal_independent_set, theorem2_maxis
from repro.graphs import cycle
from repro.lowerbound import rand_mis
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics


def ranking_inner(graph, seed=None):
    return boppana_is(graph, seed=seed)


class TestRandMIS:
    @pytest.mark.parametrize("n0", [5, 12, 25])
    def test_produces_maximal_independent_set(self, n0):
        outcome = rand_mis(n0, ranking_inner, seed=1)
        assert is_maximal_independent_set(cycle(n0), outcome.mis)

    def test_projection_contains_only_clique_hits(self):
        outcome = rand_mis(10, ranking_inner, seed=2)
        assert outcome.projected <= outcome.mis

    def test_default_clique_size(self):
        outcome = rand_mis(8, ranking_inner, seed=3)
        assert outcome.n1 == 16

    def test_explicit_clique_size(self):
        outcome = rand_mis(8, ranking_inner, n1=5, seed=3)
        assert outcome.n1 == 5

    def test_gap_accounting(self):
        outcome = rand_mis(15, ranking_inner, seed=4)
        assert sum(outcome.gaps) + len(outcome.projected) == 15

    def test_effective_rounds_split(self):
        outcome = rand_mis(15, ranking_inner, seed=4)
        assert outcome.effective_rounds == outcome.inner_rounds + outcome.fill_rounds
        assert outcome.inner_rounds == 1  # ranking is one round

    def test_gaps_bounded_by_fill(self):
        outcome = rand_mis(20, ranking_inner, seed=5)
        # Components of C \ J are exactly the gaps minus the I-neighbours.
        assert outcome.fill_rounds <= max(outcome.gaps, default=0)

    def test_reproducible(self):
        a = rand_mis(10, ranking_inner, seed=6)
        b = rand_mis(10, ranking_inner, seed=6)
        assert a.mis == b.mis

    def test_empty_inner_set_still_correct(self):
        def lazy_inner(graph, seed=None):
            return AlgorithmResult(frozenset(), RunMetrics(rounds=0), {})

        outcome = rand_mis(9, lazy_inner, seed=7)
        assert is_maximal_independent_set(cycle(9), outcome.mis)
        # Whole cycle is one gap: the fill pays ~n0 rounds.
        assert outcome.fill_rounds == 9

    def test_checks_inner_independence(self):
        from repro.exceptions import VerificationError

        def cheating_inner(graph, seed=None):
            # Two adjacent nodes of the first clique.
            return AlgorithmResult(frozenset({0, 1}), RunMetrics(), {})

        with pytest.raises(VerificationError):
            rand_mis(6, cheating_inner, seed=8)

    def test_works_with_full_theorem2_inner(self):
        def inner(graph, seed=None):
            return theorem2_maxis(graph.with_unit_weights(), 1.0, seed=seed)

        outcome = rand_mis(6, inner, n1=4, seed=9)
        assert is_maximal_independent_set(cycle(6), outcome.mis)
