"""Unit tests for cycle gap analysis."""

import pytest

from repro.lowerbound import components_after_removal, gap_lengths, max_gap


class TestGapLengths:
    def test_empty_set(self):
        assert gap_lengths(10, []) == [10]
        assert max_gap(10, []) == 10

    def test_single_member(self):
        assert gap_lengths(10, [3]) == [9]

    def test_evenly_spread(self):
        assert sorted(gap_lengths(9, [0, 3, 6])) == [2, 2, 2]

    def test_adjacent_members(self):
        # Members 0 and 1: gap 0 between them, 8 after 1 (n=10).
        assert sorted(gap_lengths(10, [0, 1])) == [0, 8]

    def test_gaps_sum_invariant(self):
        members = [0, 2, 3, 7]
        gaps = gap_lengths(12, members)
        assert sum(gaps) + len(members) == 12

    def test_out_of_range_member(self):
        with pytest.raises(ValueError):
            gap_lengths(5, [7])

    def test_duplicates_ignored(self):
        assert gap_lengths(6, [1, 1, 4]) == gap_lengths(6, [1, 4])


class TestComponentsAfterRemoval:
    def test_remove_nothing(self):
        comps = components_after_removal(5, [])
        assert comps == [list(range(5))]

    def test_remove_everything(self):
        assert components_after_removal(4, [0, 1, 2, 3]) == []

    def test_single_removal_yields_path(self):
        comps = components_after_removal(5, [2])
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 3, 4]

    def test_two_removals_split(self):
        comps = components_after_removal(8, [1, 5])
        assert sorted(len(c) for c in comps) == [3, 3]

    def test_wrap_around_merge(self):
        comps = components_after_removal(8, [3])
        # 4..7 wraps into 0..2.
        assert len(comps) == 1
        assert comps[0] == [4, 5, 6, 7, 0, 1, 2]

    def test_components_are_cycle_paths(self):
        comps = components_after_removal(20, [0, 5, 6, 13])
        flat = [v for c in comps for v in c]
        assert len(flat) == len(set(flat)) == 16
        for comp in comps:
            # Consecutive along the cycle.
            for a, b in zip(comp, comp[1:]):
                assert (b - a) % 20 == 1
