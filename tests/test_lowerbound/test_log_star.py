"""Unit tests for log* arithmetic."""

import math

from repro.lowerbound import iterated_log, log_star, tower


def test_log_star_known_values():
    assert log_star(1) == 0
    assert log_star(2) == 1
    assert log_star(4) == 2
    assert log_star(16) == 3
    assert log_star(65536) == 4
    assert log_star(2 ** 65536 if False else float(2) ** 100) == 5


def test_log_star_monotone():
    values = [log_star(n) for n in (2, 10, 100, 10_000, 10 ** 9, 10 ** 18)]
    assert values == sorted(values)


def test_log_star_grows_absurdly_slowly():
    assert log_star(10 ** 80) <= 5


def test_iterated_log():
    assert iterated_log(256, 0) == 256
    assert iterated_log(256, 1) == 8
    assert iterated_log(256, 2) == 3
    assert math.isinf(iterated_log(-1, 1))


def test_tower_inverts_log_star():
    for h in range(1, 5):
        t = tower(h)
        assert log_star(t) == h


def test_tower_saturates():
    assert tower(7) == float("inf")
