"""Property-based tests (hypothesis) for the graph substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs import WeightedGraph, arboricity, degeneracy, nash_williams_lower_bound
from repro.graphs.io import dumps, from_json, loads, to_json


@st.composite
def graphs(draw, max_nodes: int = 24):
    """Random small weighted graphs with arbitrary (valid) structure."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=60)) if possible else []
    weights = {
        v: draw(st.floats(min_value=0, max_value=1000, allow_nan=False))
        for v in range(n)
    }
    return WeightedGraph.from_edges(range(n), edges, weights)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(g):
    assert sum(g.degree(v) for v in g.nodes) == 2 * g.m


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_symmetry(g):
    for u, v in g.edges():
        assert g.has_edge(u, v) and g.has_edge(v, u)
        assert u in g.neighbors(v) and v in g.neighbors(u)


@given(graphs(), st.sets(st.integers(0, 23)))
@settings(max_examples=60, deadline=None)
def test_induced_subgraph_is_restriction(g, keep):
    keep = keep & set(g.nodes)
    h = g.induced_subgraph(keep)
    assert set(h.nodes) == keep
    for u, v in h.edges():
        assert g.has_edge(u, v)
    for u, v in g.edges():
        if u in keep and v in keep:
            assert h.has_edge(u, v)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_text_serialization_roundtrip(g):
    assert loads(dumps(g)) == g


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_json_serialization_roundtrip(g):
    assert from_json(to_json(g)) == g


@given(graphs(max_nodes=16))
@settings(max_examples=30, deadline=None)
def test_arboricity_sandwich(g):
    a = arboricity(g)
    d = degeneracy(g)
    assert nash_williams_lower_bound(g) <= a
    assert a <= max(d, 0 if g.m == 0 else 1)
    if g.m > 0:
        assert d <= 2 * a - 1


@given(graphs(max_nodes=14))
@settings(max_examples=30, deadline=None)
def test_arboricity_witness_is_valid_partition(g):
    a, forests = arboricity(g, return_witness=True)
    assert len(forests) == a
    covered = [e for f in forests for e in f]
    assert len(covered) == g.m
    assert set(covered) == set(g.edges())
