"""Property-based tests of the simulator's delivery semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs import WeightedGraph
from repro.simulator import BandwidthPolicy, NodeAlgorithm, run


@st.composite
def graphs(draw, max_nodes: int = 16):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=40)) if possible else []
    return WeightedGraph.from_edges(range(n), edges)


class EchoIds(NodeAlgorithm):
    """Round 0: broadcast own id.  Round 1: halt with sorted senders."""

    def on_start(self, ctx):
        ctx.broadcast(ctx.node_id)

    def on_round(self, ctx, inbox):
        ctx.halt(tuple(sorted(inbox)))


class TwoHop(NodeAlgorithm):
    """Learn the 2-ball: forward the neighbour list once."""

    def on_start(self, ctx):
        ctx.broadcast(None)

    def on_round(self, ctx, inbox):
        if ctx.round_index == 1:
            ctx.broadcast(tuple(sorted(inbox)))
        else:
            two_hop = set()
            for nbrs in inbox.values():
                two_hop.update(nbrs)
            ctx.halt(tuple(sorted(two_hop)))


@given(graphs())
@settings(max_examples=50, deadline=None)
def test_delivery_matches_adjacency(g):
    res = run(g, EchoIds, policy=BandwidthPolicy.local())
    for v in g.nodes:
        assert res.outputs[v] == g.neighbors(v)


@given(graphs())
@settings(max_examples=50, deadline=None)
def test_message_count_is_2m_per_broadcast_round(g):
    res = run(g, EchoIds, policy=BandwidthPolicy.local())
    assert res.metrics.messages == 2 * g.m


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_two_hop_forwarding(g):
    res = run(g, TwoHop, policy=BandwidthPolicy.local())
    for v in g.nodes:
        expected = set()
        for u in g.neighbors(v):
            expected.update(g.neighbors(u))
        assert set(res.outputs[v]) == expected


@given(graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=30, deadline=None)
def test_runs_are_deterministic_under_seed(g, seed):
    class RandomHalt(NodeAlgorithm):
        def on_start(self, ctx):
            ctx.halt(float(ctx.rng.random()))

        def on_round(self, ctx, inbox):  # pragma: no cover
            pass

    a = run(g, RandomHalt, seed=seed)
    b = run(g, RandomHalt, seed=seed)
    assert a.outputs == b.outputs
