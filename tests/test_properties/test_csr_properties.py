"""Property tests pinning the CSR-backed graph kernels to the pre-CSR
dict implementations.

The hot-path overhaul re-implemented ``induced_subgraph``, memoized
``max_degree``/``total_weight``/``fingerprint`` and added the
:class:`~repro.graphs.csr.CSRIndex`, all with the contract that the dict
API's answers — values *and* iteration orders — are unchanged.  The
reference functions below are verbatim copies of the pre-overhaul code;
hypothesis drives both implementations over random instances, including
non-contiguous node ids (slots ≠ ids is exactly where the id↔slot
translation can go wrong).
"""

import hashlib

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs import WeightedGraph, gnp, grid_2d, random_tree
from repro.graphs.csr import CSRIndex
from repro.graphs.weights import integer_weights, uniform_weights


# --------------------------------------------------------------------- #
# pre-overhaul reference implementations (copied, do not "fix")
# --------------------------------------------------------------------- #

def ref_induced_subgraph(g: WeightedGraph, nodes) -> WeightedGraph:
    keep = set(nodes)
    adj = {v: tuple(u for u in g.neighbors(v) if u in keep)
           for v in sorted(keep)}
    weights = {v: g.weight(v) for v in adj}
    return WeightedGraph(adj, weights, _skip_validation=True)


def ref_max_degree(g: WeightedGraph) -> int:
    if not tuple(g.nodes):
        return 0
    return max(g.degree(v) for v in g.nodes)


def ref_total_weight(g: WeightedGraph) -> float:
    return sum(g.weight(v) for v in g.nodes)


def ref_fingerprint(g: WeightedGraph) -> str:
    h = hashlib.sha256()
    for v in g.nodes:
        h.update(f"n{v}:{g.weight(v)!r};".encode())
    for u in g.nodes:
        for v in g.neighbors(u):
            if u < v:
                h.update(f"e{u},{v};".encode())
    return h.hexdigest()


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #

@st.composite
def zoo_graphs(draw):
    """Generator-zoo instances plus arbitrary structures, optionally
    relabelled to non-contiguous ids (v -> 3v + 7)."""
    kind = draw(st.sampled_from(["gnp", "tree", "grid", "arbitrary"]))
    seed = draw(st.integers(0, 2**16))
    if kind == "gnp":
        g = gnp(draw(st.integers(1, 40)), draw(st.floats(0.01, 0.4)), seed=seed)
        g = integer_weights(g, 50, seed=seed + 1)
    elif kind == "tree":
        g = random_tree(draw(st.integers(1, 40)), seed=seed)
        g = uniform_weights(g, 1, 10, seed=seed + 1)
    elif kind == "grid":
        g = grid_2d(draw(st.integers(1, 6)), draw(st.integers(1, 6)))
    else:
        n = draw(st.integers(0, 24))
        possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
        edges = (draw(st.lists(st.sampled_from(possible), unique=True,
                               max_size=60)) if possible else [])
        weights = {v: draw(st.floats(0, 1000, allow_nan=False))
                   for v in range(n)}
        g = WeightedGraph.from_edges(range(n), edges, weights)
    if draw(st.booleans()):
        # Non-contiguous, gappy ids: slot s maps to id 3s + 7.
        adj = {3 * v + 7: tuple(3 * u + 7 for u in g.neighbors(v))
               for v in g.nodes}
        weights = {3 * v + 7: g.weight(v) for v in g.nodes}
        g = WeightedGraph(adj, weights, _skip_validation=True)
    return g


def subset_of(draw, g, fraction_bias):
    nodes = list(g.nodes)
    if not nodes:
        return []
    return draw(st.lists(st.sampled_from(nodes), unique=True,
                         max_size=max(1, int(len(nodes) * fraction_bias))))


# --------------------------------------------------------------------- #
# dict API vs reference
# --------------------------------------------------------------------- #

@given(zoo_graphs())
@settings(max_examples=80, deadline=None)
def test_scalar_statistics_match_reference(g):
    assert g.max_degree == ref_max_degree(g)
    assert g.total_weight() == ref_total_weight(g)
    assert g.fingerprint() == ref_fingerprint(g)


@given(zoo_graphs(), st.data())
@settings(max_examples=80, deadline=None)
def test_induced_subgraph_matches_reference(g, data):
    # Both the small-keep dict sweep and the large-keep CSR path must
    # reproduce the reference exactly; drawing the fraction spans both.
    frac = data.draw(st.floats(0.05, 1.0))
    keep = subset_of(data.draw, g, frac)
    ours = g.induced_subgraph(keep)
    ref = ref_induced_subgraph(g, keep)
    assert ours == ref
    assert tuple(ours.nodes) == tuple(ref.nodes)
    for v in ref.nodes:
        assert ours.neighbors(v) == ref.neighbors(v)
        assert type(ours.neighbors(v)) is tuple
        assert all(type(u) is int for u in ours.neighbors(v))
    assert ours.m == ref.m
    assert ours.fingerprint() == ref_fingerprint(ref)


@given(zoo_graphs())
@settings(max_examples=50, deadline=None)
def test_forced_csr_induction_matches_dict_sweep(g):
    # Bypass the size heuristic: run the full-keep set through the CSR
    # kernel directly and through the reference.
    import numpy as np

    csr = g.csr
    kept = np.arange(csr.n, dtype=np.int64)
    ordered, counts, kept_neighbors = csr.induced_rows(kept)
    ids = csr.ids
    rebuilt = {}
    offset = 0
    nbr_ids = ids[kept_neighbors].tolist()
    for s, c in zip(ordered.tolist(), counts.tolist()):
        rebuilt[int(ids[s])] = tuple(nbr_ids[offset:offset + c])
        offset += c
    assert rebuilt == {v: g.neighbors(v) for v in g.nodes}


@given(zoo_graphs())
@settings(max_examples=50, deadline=None)
def test_csr_index_is_consistent(g):
    idx = g.csr
    assert isinstance(idx, CSRIndex)
    assert idx.n == g.n
    assert [int(v) for v in idx.ids] == list(g.nodes)
    for v in g.nodes:
        s = idx.slot_of[v]
        assert int(idx.ids[s]) == v
        assert int(idx.degrees[s]) == g.degree(v)
        nbrs = tuple(int(idx.ids[t]) for t in idx.neighbor_slots(s))
        assert nbrs == g.neighbors(v)
        assert idx.weights[s] == g.weight(v)


@given(zoo_graphs())
@settings(max_examples=50, deadline=None)
def test_equal_graphs_have_equal_fingerprints(g):
    # Rebuild through the public constructor from scrambled insertion
    # order: equal graphs => equal fingerprints.
    items = sorted(g.nodes, reverse=True)
    adj = {v: list(reversed(g.neighbors(v))) for v in items}
    weights = {v: g.weight(v) for v in items}
    h = WeightedGraph(adj, weights)
    assert h == g
    assert h.fingerprint() == g.fingerprint()
