"""Property-based tests: algorithm outputs are valid on arbitrary graphs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    exact_max_weight_is,
    good_nodes_approx,
    is_independent,
    is_maximal_independent_set,
    seq_boppana0,
    theorem1_maxis,
)
from repro.graphs import WeightedGraph
from repro.mis import greedy_mis, luby_mis


@st.composite
def weighted_graphs(draw, max_nodes: int = 14):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=30)) if possible else []
    weights = {
        v: float(draw(st.integers(min_value=0, max_value=50)))
        for v in range(n)
    }
    return WeightedGraph.from_edges(range(n), edges, weights)


@given(weighted_graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_luby_always_maximal(g, seed):
    res = luby_mis(g, seed=seed)
    assert is_maximal_independent_set(g, res.independent_set) or g.n == 0


@given(weighted_graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_seq_boppana0_always_independent(g, seed):
    assert is_independent(g, seq_boppana0(g, seed=seed))


@given(weighted_graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=30, deadline=None)
def test_theorem8_bound_universal(g, seed):
    """Lemma 1 is worst-case: it must hold on EVERY graph and seed."""
    res = good_nodes_approx(g, seed=seed, n_bound=1024)
    achieved = res.weight(g)
    assert achieved + 1e-9 >= g.total_weight() / (4 * (g.max_degree + 1))


@given(weighted_graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=20, deadline=None)
def test_theorem1_vs_exact_universal(g, seed):
    """(1+ε)Δ certified against the exact optimum on arbitrary inputs."""
    eps = 0.5
    res = theorem1_maxis(g, eps, mis="luby", seed=seed, n_bound=1024)
    _, opt = exact_max_weight_is(g)
    assert res.weight(g) + 1e-9 >= opt / ((1 + eps) * max(1, g.max_degree))


@given(weighted_graphs())
@settings(max_examples=40, deadline=None)
def test_exact_dominates_greedy_mis(g):
    _, opt = exact_max_weight_is(g)
    assert opt + 1e-9 >= g.total_weight(greedy_mis(g))
