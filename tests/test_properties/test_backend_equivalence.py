"""Property-based pin of the backend byte-identity contract.

For arbitrary small graphs (including empty, edgeless, and graphs with
isolated nodes), arbitrary seeds, and every protocol family with a fleet
kernel, the columnar backend must reproduce the per-node scheduler's
outputs, metrics, and n_bound exactly.  Weights are drawn adversarially
(zeros, ties, floats) because the kernels replay floating-point
summation order — any reordering shows up here as a last-ulp mismatch.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.coloring.random_trial import RandomTrialColoring
from repro.core.good_nodes import GoodNodesProtocol
from repro.core.sparsify import SamplingProtocol
from repro.graphs import WeightedGraph
from repro.mis.deterministic import LocalMinimaMIS
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.luby import LubyMIS
from repro.simulator.runner import run

FACTORIES = [
    GoodNodesProtocol,
    SamplingProtocol,
    LubyMIS,
    GhaffariMIS,
    LocalMinimaMIS,
    RandomTrialColoring,
]


@st.composite
def weighted_graphs(draw, max_nodes: int = 14):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (draw(st.lists(st.sampled_from(possible), unique=True,
                           max_size=30))
             if possible else [])
    weights = draw(st.lists(
        st.one_of(st.just(0.0), st.integers(min_value=0, max_value=9),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=n, max_size=n))
    return WeightedGraph.from_edges(range(n), edges,
                                    weights=dict(enumerate(weights)))


@given(g=weighted_graphs(),
       fi=st.integers(min_value=0, max_value=len(FACTORIES) - 1),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_columnar_backend_is_byte_identical(g, fi, seed):
    factory = FACTORIES[fi]
    base = run(g, factory, seed=seed)
    col = run(g, factory, seed=seed, backend="columnar")
    assert col.outputs == base.outputs
    assert col.metrics.to_dict() == base.metrics.to_dict()
    assert col.n_bound == base.n_bound
