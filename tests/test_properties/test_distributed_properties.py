"""Property-based tests for the distributed primitives and colouring."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.coloring import random_coloring, verify_coloring
from repro.graphs import WeightedGraph, bfs_distances, connected_components
from repro.primitives import bfs_tree, flood_value


@st.composite
def connected_graphs(draw, max_nodes: int = 18):
    """Random connected graphs: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    # Random tree via random parent for each non-root node.
    edges = set()
    for v in range(1, n):
        p = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((p, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), unique=True, max_size=20))
    edges.update(extra)
    weights = {v: float(draw(st.integers(min_value=0, max_value=20)))
               for v in range(n)}
    return WeightedGraph.from_edges(range(n), sorted(edges), weights)


@given(connected_graphs(), st.integers(0, 17))
@settings(max_examples=50, deadline=None)
def test_bfs_levels_match_reference(g, root_pick):
    root = g.nodes[root_pick % g.n]
    res = bfs_tree(g, root, n_bound=4096)
    assert res.level == bfs_distances(g, root)


@given(connected_graphs(), st.integers(0, 17))
@settings(max_examples=50, deadline=None)
def test_bfs_sum_aggregate_exact(g, root_pick):
    root = g.nodes[root_pick % g.n]
    res = bfs_tree(g, root, n_bound=4096)
    assert abs(res.aggregate - g.total_weight()) < 1e-9


@given(connected_graphs(), st.integers(0, 17))
@settings(max_examples=40, deadline=None)
def test_bfs_tree_spans(g, root_pick):
    root = g.nodes[root_pick % g.n]
    res = bfs_tree(g, root, n_bound=4096)
    # Parent pointers + root cover all nodes and form a connected tree.
    tree_edges = [(v, p) for v, p in res.parent.items()]
    tree = WeightedGraph.from_edges(g.nodes, tree_edges)
    assert len(connected_components(tree)) == 1
    assert tree.m == g.n - 1


@given(connected_graphs(), st.integers(0, 17))
@settings(max_examples=40, deadline=None)
def test_flood_reaches_everyone(g, root_pick):
    root = g.nodes[root_pick % g.n]
    outputs, metrics = flood_value(g, root, 7, n_bound=4096)
    assert all(v == 7 for v in outputs.values())
    ecc = max(bfs_distances(g, root).values())
    assert metrics.rounds == ecc


@given(connected_graphs(), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_random_coloring_always_proper(g, seed):
    res = random_coloring(g, seed=seed)
    verify_coloring(g, res.colors, max_colors=g.max_degree + 1)
