"""Property-based tests of the local-ratio invariants (§4.3).

These check the *worst-case* statements of the paper on arbitrary small
graphs and arbitrary independent-set push sequences — exactly the sets of
inputs Proposition 2 and Theorem 6 quantify over.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    apply_reduction,
    clip_nonnegative,
    is_independent,
    pop_stage,
    stack_value,
)
from repro.graphs import WeightedGraph
from repro.mis import greedy_mis


@st.composite
def weighted_graphs(draw, max_nodes: int = 16):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=40)) if possible else []
    weights = {
        v: draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        for v in range(n)
    }
    return WeightedGraph.from_edges(range(n), edges, weights)


@st.composite
def graph_with_push_sequence(draw):
    """A graph plus 1-4 phases of (greedy MIS of a random positive subset)."""
    g = draw(weighted_graphs())
    orders = draw(
        st.lists(st.permutations(list(g.nodes)), min_size=1, max_size=4)
    )
    return g, orders


@given(graph_with_push_sequence())
@settings(max_examples=80, deadline=None)
def test_stack_property_proposition2(case):
    """w(I) >= Σ_i w_i(I_i) for ANY sequence of independent pushes."""
    g, orders = case
    weights = g.weights
    frames = []
    for order in orders:
        positive = [v for v in order if weights[v] > 0]
        if not positive:
            break
        sub = g.induced_subgraph(positive)
        pushed = greedy_mis(sub, order=positive)
        weights, frame = apply_reduction(g, weights, pushed)
        weights = clip_nonnegative(weights)
        frames.append(frame)
    result = pop_stage(g, frames)
    assert is_independent(g, result)
    assert g.total_weight(result) + 1e-6 >= stack_value(frames)


@given(graph_with_push_sequence())
@settings(max_examples=60, deadline=None)
def test_reduction_conserves_or_decreases_positive_mass(case):
    """Each reduction removes at least the pushed value from the graph."""
    g, orders = case
    weights = g.weights
    for order in orders:
        positive = [v for v in order if weights[v] > 0]
        if not positive:
            break
        before = sum(w for w in weights.values() if w > 0)
        sub = g.induced_subgraph(positive)
        pushed = greedy_mis(sub, order=positive)
        weights, frame = apply_reduction(g, weights, pushed)
        weights = clip_nonnegative(weights)
        after = sum(weights.values())
        assert after <= before - frame.value + 1e-6


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_pushed_nodes_zeroed(g):
    weights = g.weights
    pushed = greedy_mis(g)
    new_w, _ = apply_reduction(g, weights, pushed)
    for v in pushed:
        assert new_w[v] == 0.0
