"""Unit tests for the MIS black-box registry and driver."""

import pytest

from repro.graphs import gnp
from repro.mis import (
    MIS_BLACKBOXES,
    get_mis_blackbox,
    luby_mis,
)
from repro.mis.interface import _default_round_limit


def test_registry_contains_all_three():
    assert set(MIS_BLACKBOXES) == {"luby", "ghaffari", "deterministic", "coloring"}


def test_get_by_name():
    assert get_mis_blackbox("luby") is luby_mis


def test_get_passthrough_callable():
    fn = lambda g, **kw: None  # noqa: E731
    assert get_mis_blackbox(fn) is fn


def test_get_unknown_name():
    with pytest.raises(KeyError, match="unknown MIS black box"):
        get_mis_blackbox("nope")


def test_round_limits_scale():
    assert _default_round_limit(10, deterministic=True) == 104
    assert _default_round_limit(1024, deterministic=False) > _default_round_limit(
        4, deterministic=False
    )


def test_custom_n_bound_respected():
    g = gnp(20, 0.2, seed=1)
    res = luby_mis(g, seed=2, n_bound=10_000)
    assert res.metadata["n_bound"] == 10_000


def test_result_weight_helper():
    g = gnp(20, 0.2, seed=1).with_weights({v: 2.0 for v in range(20)})
    res = luby_mis(g, seed=2)
    assert res.weight(g) == 2.0 * res.size
