"""Unit tests for the centralized MIS routines."""

from repro.core.verify import assert_maximal_independent_set
from repro.graphs import cycle, empty, gnp, path, star
from repro.mis import greedy_mis, random_order_mis


def test_greedy_mis_default_order_path():
    # Scanning 0,1,2,3 on a path picks 0 and 2 (3 is blocked by 2).
    assert greedy_mis(path(4)) == frozenset({0, 2})


def test_greedy_mis_explicit_order():
    assert greedy_mis(path(4), order=[1, 3, 0, 2]) == frozenset({1, 3})


def test_greedy_mis_is_maximal():
    g = gnp(70, 0.1, seed=1)
    assert_maximal_independent_set(g, greedy_mis(g))


def test_greedy_mis_star_hub_first():
    assert greedy_mis(star(5), order=[0, 1, 2, 3, 4, 5]) == frozenset({0})


def test_greedy_mis_empty():
    assert greedy_mis(empty(0)) == frozenset()
    assert greedy_mis(empty(3)) == frozenset({0, 1, 2})


def test_random_order_mis_maximal_and_reproducible():
    g = cycle(30)
    a = random_order_mis(g, seed=7)
    b = random_order_mis(g, seed=7)
    assert a == b
    assert_maximal_independent_set(g, a)


def test_random_order_mis_varies_with_seed():
    g = gnp(50, 0.1, seed=2)
    sets = {random_order_mis(g, seed=s) for s in range(8)}
    assert len(sets) > 1
