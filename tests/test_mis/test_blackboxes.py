"""Correctness tests for the three distributed MIS black boxes.

Every black box must return a *maximal independent set* on every input —
that is the contract the paper's compositions rely on.
"""

import pytest

from repro.core.verify import assert_maximal_independent_set
from repro.graphs import complete, cycle, empty, gnp, path, star
from repro.mis import coloring_mis, ghaffari_mis, local_minima_mis, luby_mis

BLACKBOXES = {
    "luby": luby_mis,
    "ghaffari": ghaffari_mis,
    "deterministic": local_minima_mis,
    "coloring": coloring_mis,
}


@pytest.mark.parametrize("name", sorted(BLACKBOXES))
class TestMISContract:
    def test_mis_on_gnp(self, name):
        g = gnp(80, 0.08, seed=1)
        res = BLACKBOXES[name](g, seed=2)
        assert_maximal_independent_set(g, res.independent_set)

    def test_mis_on_cycle(self, name):
        g = cycle(21)
        res = BLACKBOXES[name](g, seed=3)
        assert_maximal_independent_set(g, res.independent_set)

    def test_mis_on_complete(self, name):
        g = complete(12)
        res = BLACKBOXES[name](g, seed=4)
        assert len(res.independent_set) == 1

    def test_mis_on_star(self, name):
        g = star(9)
        res = BLACKBOXES[name](g, seed=5)
        # Either the hub alone or all the leaves.
        assert res.independent_set in (frozenset({0}), frozenset(range(1, 10)))

    def test_isolated_nodes_always_in(self, name):
        g = empty(6)
        res = BLACKBOXES[name](g, seed=6)
        assert res.independent_set == frozenset(range(6))
        assert res.rounds <= 1

    def test_empty_graph(self, name):
        res = BLACKBOXES[name](empty(0), seed=0)
        assert res.independent_set == frozenset()
        assert res.rounds == 0

    def test_single_node(self, name):
        res = BLACKBOXES[name](path(1), seed=0)
        assert res.independent_set == frozenset({0})

    def test_metrics_populated(self, name):
        g = gnp(40, 0.1, seed=7)
        res = BLACKBOXES[name](g, seed=8)
        assert res.rounds >= 1
        assert res.messages > 0
        assert res.metadata["algorithm"]


class TestRandomizedBehaviour:
    def test_luby_reproducible(self):
        g = gnp(60, 0.1, seed=1)
        a = luby_mis(g, seed=5)
        b = luby_mis(g, seed=5)
        assert a.independent_set == b.independent_set

    def test_luby_seed_sensitivity(self):
        g = gnp(60, 0.1, seed=1)
        sets = {luby_mis(g, seed=s).independent_set for s in range(6)}
        assert len(sets) > 1

    def test_luby_logarithmic_rounds(self):
        # Round counts stay far below n on a large sparse graph.
        g = gnp(500, 0.01, seed=2)
        res = luby_mis(g, seed=3)
        assert res.rounds <= 40

    def test_ghaffari_terminates_quickly_on_low_degree(self):
        g = cycle(200)
        res = ghaffari_mis(g, seed=4)
        assert res.rounds <= 120
        assert_maximal_independent_set(g, res.independent_set)

    def test_deterministic_is_seed_independent(self):
        g = gnp(50, 0.1, seed=9)
        a = local_minima_mis(g, seed=1)
        b = local_minima_mis(g, seed=999)
        assert a.independent_set == b.independent_set

    def test_deterministic_smallest_id_always_in(self):
        g = gnp(50, 0.15, seed=10)
        res = local_minima_mis(g)
        assert min(g.nodes) in res.independent_set
