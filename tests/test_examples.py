"""Every example script must run cleanly end to end.

Run as subprocesses so an example crashing (or OOMing) fails the suite
instead of silently rotting — exactly the failure mode that hit the
lower-bound walkthrough once.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
