"""Perf-gate harness: matrix shape, measurement schema, gate logic."""

import json

import pytest

from repro.bench.perf_gate import (
    BASELINE_FILE,
    SCHEMA,
    compare_reports,
    load_report,
    matrix_cells,
    pipelined_coloring,
    render_comparison,
    render_report,
    run_perf_gate,
    write_report,
)
from repro.graphs import gnp
from repro.graphs.weights import integer_weights


# Building the full matrix is no longer free — the scale tier
# materializes 10^5..2*10^5-node graphs — so every test in this module
# shares one build.
@pytest.fixture(scope="module")
def full_cells():
    return matrix_cells("full")


class TestMatrix:
    def test_tiny_is_subset_of_full(self, full_cells):
        tiny = {(c["graph_name"], c["alg_name"]) for c in matrix_cells("tiny")}
        full = {(c["graph_name"], c["alg_name"]) for c in full_cells}
        assert tiny and tiny < full

    def test_full_covers_four_algorithm_families_and_scale_tier(self, full_cells):
        algs = {c["alg_name"] for c in full_cells}
        assert {"thm8", "thm9", "thm1", "coloring"} <= algs
        # The scale tier pairs each per-node cell with its columnar twin.
        assert {"mis-det", "mis-det@columnar", "mis-luby@columnar"} <= algs

    def test_scale_cells_record_their_backend(self, full_cells):
        by_alg = {c["alg_name"]: c for c in full_cells}
        assert by_alg["mis-det"]["backend"] is None
        assert by_alg["mis-det@columnar"]["backend"] == "columnar"
        assert len(by_alg["mis-det@columnar"]["graph"].nodes) >= 100_000

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError):
            matrix_cells("huge")

    def test_graphs_are_deterministic(self, full_cells):
        a = {c["graph_name"]: c["graph"].fingerprint() for c in full_cells}
        b = {c["graph_name"]: c["graph"].fingerprint()
             for c in matrix_cells("full")}
        assert a == b


class TestMeasurement:
    def test_tiny_report_schema_and_roundtrip(self, tmp_path):
        doc = run_perf_gate(matrix="tiny", repeats=1)
        assert doc["schema"] == SCHEMA
        assert doc["matrix"] == "tiny"
        assert len(doc["cells"]) == len(matrix_cells("tiny"))
        for cell in doc["cells"]:
            assert cell["seconds"] > 0
            assert cell["rounds"] > 0
            assert cell["messages"] > 0
            assert cell["weight"] > 0
        assert doc["env"]["python"]
        path = tmp_path / BASELINE_FILE
        write_report(doc, str(path))
        assert load_report(str(path)) == json.loads(path.read_text())

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else", "cells": []}')
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_perf_gate(matrix="tiny", repeats=0)

    def test_coloring_cell_callable_is_deterministic(self):
        g = integer_weights(gnp(30, 0.15, seed=1), 100, seed=2)
        a = pipelined_coloring(g, seed=0)
        b = pipelined_coloring(g, seed=99)  # seed is accepted and ignored
        assert tuple(sorted(a.independent_set)) == tuple(sorted(b.independent_set))
        assert a.metrics.rounds == b.metrics.rounds


class TestGate:
    def _report(self, cells):
        return {"schema": SCHEMA, "cells": [
            {"graph": g, "algorithm": a, "seconds": s} for g, a, s in cells
        ]}

    def test_within_tolerance_passes(self):
        cur = self._report([("g", "x", 0.014)])
        base = self._report([("g", "x", 0.010)])
        rows, ok = compare_reports(cur, base, tolerance=1.5)
        assert ok
        assert rows[0]["status"] == "ok"
        assert rows[0]["ratio"] == pytest.approx(1.4)

    def test_slowdown_beyond_tolerance_fails(self):
        cur = self._report([("g", "x", 0.016), ("g", "y", 0.010)])
        base = self._report([("g", "x", 0.010), ("g", "y", 0.010)])
        rows, ok = compare_reports(cur, base, tolerance=1.5)
        assert not ok
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["x"]["status"] == "FAIL"
        assert by_alg["y"]["status"] == "ok"

    def test_unmatched_cells_never_fail_the_gate(self):
        # The tiny CI matrix is a strict subset of the committed full
        # baseline: baseline-only cells report as missing, new cells as
        # new, and neither trips the gate.
        cur = self._report([("g", "x", 0.010), ("h", "x", 0.010)])
        base = self._report([("g", "x", 0.010), ("g", "z", 0.010)])
        rows, ok = compare_reports(cur, base, tolerance=1.5)
        assert ok
        statuses = {(r["graph"], r["algorithm"]): r["status"] for r in rows}
        assert statuses[("h", "x")] == "new"
        assert statuses[("g", "z")] == "missing"

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(self._report([]), self._report([]), tolerance=0)

    def test_renderers_return_text(self):
        doc = {"schema": SCHEMA, "matrix": "tiny", "repeats": 1,
               "env": {"commit": "abc"}, "cells": [
                   {"graph": "g", "algorithm": "x", "n": 10, "m": 5,
                    "seconds": 0.01, "rounds_per_sec": 100.0,
                    "messages_per_sec": 1000.0}]}
        assert "g/x" in render_report(doc)
        rows, _ = compare_reports(doc, doc, tolerance=1.5)
        assert "g/x" in render_comparison(rows, 1.5)


class TestCommittedBaseline:
    def test_repo_baseline_is_a_full_matrix_report(self, full_cells):
        # BENCH_runner.json at the repo root is the committed reference;
        # every cell of the full matrix must be present.
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        path = os.path.join(root, BASELINE_FILE)
        doc = load_report(path)
        keys = {(c["graph"], c["algorithm"]) for c in doc["cells"]}
        want = {(c["graph_name"], c["alg_name"]) for c in full_cells}
        assert keys == want
