"""Unit tests for table rendering and the experiment report type."""

from repro.bench import ExperimentReport, format_row_dicts, format_table, timed


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        # All rows render at equal width.
        assert len(set(len(ln) for ln in lines)) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159], [0.0001], [12345.6]])
        assert "3.142" in out
        assert "0.0001" in out
        assert "1.23e+04" in out

    def test_bool_formatting(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_zero(self):
        assert "0" in format_table(["z"], [[0.0]])


class TestRowDicts:
    def test_empty(self):
        assert format_row_dicts([]) == "(no rows)"

    def test_uses_first_row_keys(self):
        out = format_row_dicts([{"n": 1, "m": 2}, {"n": 3, "m": 4}])
        assert out.splitlines()[0].split() == ["n", "m"]

    def test_missing_keys_blank(self):
        out = format_row_dicts([{"n": 1, "m": 2}, {"n": 3}])
        assert "3" in out


class TestExperimentReport:
    def test_render_contains_everything(self):
        rep = ExperimentReport("EX", "demo experiment")
        rep.add_row(n=10, rounds=3)
        rep.findings["ok"] = True
        text = rep.render()
        assert "EX" in text
        assert "demo experiment" in text
        assert "rounds" in text
        assert "ok: True" in text

    def test_timed(self):
        with timed() as t:
            sum(range(1000))
        assert t.seconds >= 0.0


class TestReportJson:
    def test_roundtrip(self):
        rep = ExperimentReport("EX", "demo")
        rep.add_row(n=10, fraction=0.25, holds=True)
        rep.findings["bound_always_holds"] = True
        back = ExperimentReport.from_json(rep.to_json())
        assert back.experiment == "EX"
        assert back.rows == rep.rows
        assert back.findings == rep.findings

    def test_missing_fields_default(self):
        back = ExperimentReport.from_json('{"experiment": "E", "description": "d"}')
        assert back.rows == []
        assert back.findings == {}
