"""Smoke tests for the E1–E13 experiment suite at reduced sizes.

Each experiment must run, produce rows, and report its headline finding
as true — these are the inequalities the paper proves, so a false finding
is a regression, not noise (sizes/trials here are small but the bounds are
worst-case or extremely-high-probability at these scales).
"""

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    experiment_e1_good_nodes,
    experiment_e2_sparsify,
    experiment_e3_boosting,
    experiment_e4_theorem1,
    experiment_e5_speedup,
    experiment_e6_arboricity,
    experiment_e7_ranking,
    experiment_e8_sequential_view,
    experiment_e9_lower_bound,
    experiment_e10_ablations,
    experiment_e11_coloring_diameter,
    experiment_e12_ranking_variance,
)


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 14)}


def test_e1_bound_always_holds():
    rep = experiment_e1_good_nodes(sizes=(60,), trials=2)
    assert rep.rows
    assert rep.findings["bound_always_holds"]


def test_e2_sparsification_shape():
    rep = experiment_e2_sparsify(sizes=(200,), trials=2)
    assert rep.rows
    assert rep.findings["delta_h_is_O_log_n"]


def test_e3_boosting():
    rep = experiment_e3_boosting(n=70, eps_values=(1.0, 0.5))
    assert rep.findings["stack_property_holds"]
    assert rep.findings["remark_bound_holds"]


def test_e4_theorem1_certified():
    rep = experiment_e4_theorem1(n=40, eps_values=(0.5,), trials=2)
    assert rep.findings["all_certificates_hold"]


def test_e5_speedup_shape():
    rep = experiment_e5_speedup(n=120, scales=(1, 100, 100000))
    assert rep.findings["baseline_grows_with_W"]
    assert rep.findings["theorem2_flat_in_W"]


def test_e6_arboricity():
    rep = experiment_e6_arboricity(hub_degrees=(30,), n=150)
    assert rep.rows
    assert rep.findings["arboricity_algorithm_nontrivial"]
    row = rep.rows[0]
    assert row["alpha"] < row["delta"]


def test_e7_ranking():
    rep = experiment_e7_ranking(n=300, degrees=(5,), trials=5)
    assert rep.findings["boosted_bound_holds"]
    # At n=300, d=5 the failure bound is exp(-300/1536); every trial passes.
    assert rep.rows[0]["success_rate"] == "5/5"


def test_e8_sequential_view():
    rep = experiment_e8_sequential_view(trials=800)
    assert rep.findings["tv_within_noise"]


def test_e9_lower_bound():
    rep = experiment_e9_lower_bound(cycle_sizes=(12, 24))
    assert rep.findings["all_reductions_correct"]
    for row in rep.rows:
        assert row["mis_size"] >= row["n0"] // 3


def test_e10_ablations():
    rep = experiment_e10_ablations(n=150)
    assert rep.findings["weight_term_needed"]
    assert len(rep.rows) >= 10


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_reports_render(name):
    # Rendering never touches the algorithms again; build a tiny report.
    from repro.bench import ExperimentReport

    rep = ExperimentReport(name, "render check")
    rep.add_row(value=1)
    assert name in rep.render()


def test_e11_coloring_diameter():
    rep = experiment_e11_coloring_diameter(lengths=(10, 30))
    assert rep.findings["coloring_rounds_grow_with_diameter"]
    assert rep.findings["theorem2_diameter_independent"]


def test_e12_ranking_variance():
    rep = experiment_e12_ranking_variance(n_leaves=120, trials=600)
    assert rep.findings["no_concentration"]
    assert rep.findings["sparsified_always_ok"]


def test_e12_batched_matches_serial(tmp_path):
    kwargs = dict(n_leaves=60, trials=80, seed=122)
    serial = experiment_e12_ranking_variance(**kwargs)
    cache = str(tmp_path / "cache")
    batched = experiment_e12_ranking_variance(**kwargs, n_jobs=2,
                                              cache_dir=cache)
    assert batched.rows == serial.rows
    assert batched.findings == serial.findings
    # Warm cache: rerun hits only memoized jobs and is still identical.
    warm = experiment_e12_ranking_variance(**kwargs, n_jobs=2, cache_dir=cache)
    assert warm.rows == serial.rows


def test_e7_batched_matches_serial():
    kwargs = dict(n=200, degrees=(4, 8), trials=4, seed=77)
    serial = experiment_e7_ranking(**kwargs)
    batched = experiment_e7_ranking(**kwargs, n_jobs=3)
    assert batched.rows == serial.rows
    assert batched.findings == serial.findings


def test_e13_message_complexity():
    from repro.bench import experiment_e13_message_complexity

    rep = experiment_e13_message_complexity(sizes=(80, 160))
    assert rep.findings["messages_per_edge_bounded"]
    assert all("thm2_msgs" in row for row in rep.rows)


def test_deep_presets_reference_real_parameters():
    import inspect

    from repro.bench import ALL_EXPERIMENTS, DEEP_PRESETS, deep_kwargs

    assert set(DEEP_PRESETS) == set(ALL_EXPERIMENTS)
    for name, kwargs in DEEP_PRESETS.items():
        params = inspect.signature(ALL_EXPERIMENTS[name]).parameters
        unknown = set(kwargs) - set(params)
        assert not unknown, f"{name}: unknown preset parameters {unknown}"
    assert deep_kwargs("E1")["trials"] == 5
    assert deep_kwargs("nonexistent") == {}
