"""Regression tests for ExperimentReport JSON fidelity and ``timed``."""

import json

import numpy as np
import pytest

from repro.bench import ExperimentReport, timed, to_native


class TestNumpyCoercion:
    def test_to_native_scalars(self):
        assert to_native(np.int64(3)) == 3
        assert type(to_native(np.int64(3))) is int
        assert type(to_native(np.float64(2.5))) is float
        assert type(to_native(np.bool_(True))) is bool

    def test_to_native_nested(self):
        doc = {"a": [np.int32(1), (np.float64(2.0),)],
               "b": {"c": np.bool_(False)},
               "d": np.array([1.5, 2.5])}
        native = to_native(doc)
        assert native == {"a": [1, [2.0]], "b": {"c": False}, "d": [1.5, 2.5]}
        assert type(native["a"][0]) is int

    def test_add_row_coerces(self):
        r = ExperimentReport("EX", "numpy rows")
        r.add_row(n=np.int64(10), slope=np.float64(1.25), ok=np.bool_(True))
        row = r.rows[0]
        assert type(row["n"]) is int
        assert type(row["slope"]) is float
        assert type(row["ok"]) is bool

    def test_json_round_trip_is_faithful(self):
        r = ExperimentReport("EX", "round trip")
        r.add_row(n=np.int64(10), slope=np.float64(0.5))
        r.findings["grows"] = np.bool_(True)
        r.findings["slope"] = round(np.float64(1.234567), 3)
        back = ExperimentReport.from_json(r.to_json())
        assert back.rows == [{"n": 10, "slope": 0.5}]
        # The old default=str path turned these into "True" / "1.235".
        assert back.findings == {"grows": True, "slope": 1.235}
        assert type(back.findings["grows"]) is bool

    def test_unserialisable_values_fail_loudly(self):
        r = ExperimentReport("EX", "no silent stringification")
        r.findings["bad"] = object()
        with pytest.raises(TypeError):
            r.to_json()

    def test_add_finding_coerces(self):
        r = ExperimentReport("EX", "findings")
        r.add_finding("count", np.int64(7))
        assert type(r.findings["count"]) is int
        json.dumps(r.findings)


class TestTimed:
    def test_basic_measurement(self):
        with timed() as t:
            pass
        assert t.seconds >= 0.0

    def test_records_elapsed_on_exception(self):
        t = timed()
        with pytest.raises(ValueError):
            with t:
                raise ValueError("body failed")
        assert t.seconds > 0.0

    def test_reentry_measures_each_block(self):
        t = timed()
        with t:
            pass
        assert t.seconds >= 0.0
        with t:
            sum(range(10_000))
        # The second block was re-measured from its own start time, so the
        # result is a sane per-block duration, not time since block one.
        assert 0.0 < t.seconds < 60.0
        assert not t._starts  # no leaked start times

    def test_nesting_is_safe(self):
        t = timed()
        with t:
            with t:
                pass
            inner = t.seconds
        outer = t.seconds
        # Inner block finished first and was not clobbered by the outer start.
        assert outer >= inner >= 0.0
