# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-smoke experiments examples coverage clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny batched sweep exercising the parallel path on every CI run:
# a cold run must compute all jobs, the warm rerun must serve every one
# of them from the cache with identical aggregate traffic.
BENCH_SMOKE_CACHE := .bench-smoke-cache
BENCH_SMOKE_ARGS  := sweep --algorithm ranking --graph gnp:60,0.08 \
	--weights uniform:1,20 --seeds 6 --jobs 2 \
	--cache $(BENCH_SMOKE_CACHE) --json

bench-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
bench-smoke:
	rm -rf $(BENCH_SMOKE_CACHE)
	$(PYTHON) -m repro $(BENCH_SMOKE_ARGS) > .bench-smoke-cold.json
	$(PYTHON) -m repro $(BENCH_SMOKE_ARGS) > .bench-smoke-warm.json
	$(PYTHON) -c "import json; \
	cold = json.load(open('.bench-smoke-cold.json')); \
	warm = json.load(open('.bench-smoke-warm.json')); \
	assert cold['failed'] == warm['failed'] == 0, (cold, warm); \
	assert cold['cached'] == 0, cold; \
	assert warm['cached'] == warm['jobs'], warm; \
	assert warm['total_bits'] == cold['total_bits'], (cold, warm); \
	print('bench-smoke ok:', warm['jobs'], 'jobs, warm run fully cached')"
	rm -rf $(BENCH_SMOKE_CACHE) .bench-smoke-cold.json .bench-smoke-warm.json

# Regenerate every experiment table (E1..E13) to stdout.
experiments:
	$(PYTHON) -m repro experiments

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

# The final artifacts recorded in the repository.
record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
