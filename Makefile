# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test lint bench bench-smoke bench-perf bench-columnar backend-equivalence service-smoke fleet-smoke fleet-saturation graphplane-smoke delta-smoke slo-check experiments examples coverage clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Static checks (config in pyproject.toml [tool.ruff]).
lint:
	ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny batched sweep exercising the parallel path on every CI run:
# a cold run must compute all jobs, the warm rerun must serve every one
# of them from the cache with identical aggregate traffic, and the
# --emit-metrics JSONL must round-trip through the sweep aggregator.
# All scratch state lives in a tempdir cleaned up even on failure —
# see benchmarks/smoke_check.py.
bench-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
bench-smoke:
	$(PYTHON) benchmarks/smoke_check.py

# Perf-gate smoke: time the tiny hot-path matrix and gate it against the
# committed BENCH_runner.json with a wide (3x) cross-machine tolerance.
# Writes the fresh measurement to bench_current.json (uploaded as a CI
# artifact).  Full matrix / rebaseline: `python -m repro bench --repeats 5
# --out BENCH_runner.json` on the reference machine.  See
# docs/performance.md.
bench-perf: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
bench-perf:
	$(PYTHON) benchmarks/perf_gate.py --tiny --repeats 2 \
		--baseline BENCH_runner.json --tolerance 3.0 \
		--out bench_current.json

# Columnar perf gate: one 10^5-node columnar cell gated against the
# committed baseline at the same wide cross-machine tolerance.  Catches
# a columnar backend that silently lost its vectorized fast path (e.g.
# an always-on FleetFallback would be ~20x over budget).
bench-columnar: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
bench-columnar:
	$(PYTHON) benchmarks/perf_gate.py --matrix columnar-tiny --repeats 2 \
		--baseline BENCH_runner.json --tolerance 3.0 \
		--out bench_columnar.json

# Backend byte-identity: the golden-sha256 family suite, the backend
# unit/fallback/cache suite, and the hypothesis equivalence property —
# the subset of tier 1 that pins per-node and columnar to identical
# reports.
backend-equivalence: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
backend-equivalence:
	$(PYTHON) -m pytest -q \
		tests/test_faults/test_runner_faults.py \
		tests/test_simulator/test_backends.py \
		tests/test_properties/test_backend_equivalence.py

# Solver-service smoke: start `repro serve` on an ephemeral port, check
# /v1/health, assert one fixed-seed HTTP solve is byte-identical to
# repro.api.solve, run `repro loadgen` (8 clients, 5 s) against it —
# which re-certifies every unique report — then SIGTERM and assert a
# clean drain.  Writes BENCH_service.json for the CI artifact upload.
# See benchmarks/service_smoke.py and docs/service.md.
service-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
service-smoke:
	$(PYTHON) benchmarks/service_smoke.py --keep-bench

# Sharded-fleet smoke: start `repro fleet` (router + 2 worker
# subprocesses) on an ephemeral port, assert /v1/ready + /v1/health,
# prove coalescing survives sharding (K unique fingerprints under
# concurrent duplicates -> exactly K solver executions fleet-wide),
# check byte-identity against repro.api.solve, run a seeded open-loop
# Poisson burst, then SIGTERM and assert the whole fleet drains.
# Writes bench_fleet_current.json for the CI artifact upload.  See
# benchmarks/fleet_smoke.py and docs/service.md ("Fleet").
fleet-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
fleet-smoke:
	$(PYTHON) benchmarks/fleet_smoke.py --keep-bench

# Graph-plane smoke: start `repro serve --graph-store`, register a
# graph binary blob (POST /v1/graphs), assert a graph_ref solve is
# byte-identical to the body solve and to repro.api.solve, measure the
# ingest-once-solve-many cells (10^4/10^5 nodes, ref path must beat
# the body path >= 5x on fresh solves of the 10^5 cell), evict, drain,
# and assert no shared-memory arena segment leaks — on SIGTERM *and*
# SIGKILL.  Writes BENCH_graphplane.json for the CI artifact upload.
# See benchmarks/graphplane_smoke.py and docs/service.md ("Graph
# registry").
graphplane-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
graphplane-smoke:
	$(PYTHON) benchmarks/graphplane_smoke.py --keep-bench

# Delta-plane smoke: in-process engine on the 10^5-node cell, parent
# report warmed into the memory tier, then per epoch one full re-solve
# of an edited child (register + solve by ref) vs one delta-form solve
# served incrementally from the parent's cached report.  Asserts the
# incremental report is byte-identical to the from-scratch solve, that
# topology edits fall back to the full path, and that the incremental
# path is >= 3x faster at <= 1% edit distance.  Writes BENCH_delta.json
# for the CI artifact upload.  See benchmarks/delta_smoke.py and
# docs/service.md ("Deltas").
delta-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
delta-smoke:
	$(PYTHON) benchmarks/delta_smoke.py --keep-bench

# Full saturation sweep (minutes, not for CI): open-loop rate ladder
# against 1/2/4-worker fleets, knee detection per worker count, writes
# BENCH_fleet.json.  Rebaseline on the reference machine with:
#   python -m repro loadgen --saturation --workers-list 1,2,4
fleet-saturation: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
fleet-saturation:
	$(PYTHON) -m repro loadgen --saturation --workers-list 1,2,4 \
		--arrival poisson --arrival-seed 0 --duration 3

# Tail-latency SLO gate: evaluate benchmarks/slo_spec.json against the
# committed BENCH_service.json baseline (fails if the spec was tightened
# below what the baseline measures), then against a fresh loadgen burst
# on a just-started server.  Writes slo_report.json (the CI artifact);
# exits non-zero on any violated objective.  See benchmarks/slo_check.py
# and docs/observability.md.
slo-check: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
slo-check:
	$(PYTHON) benchmarks/slo_check.py --duration 5

# Regenerate every experiment table (E1..E13) to stdout.
experiments:
	$(PYTHON) -m repro experiments

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

# The final artifacts recorded in the repository.
record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
