#!/usr/bin/env python
"""Quickstart: approximate a maximum-weight independent set in CONGEST.

Builds a weighted random graph, runs the paper's headline algorithm
(Theorem 2: ``(1+ε)Δ``-approximation in ``poly(log log n)/ε`` rounds),
verifies the output, and compares it with the exact optimum and with the
previous state of the art (Bar-Yehuda et al., PODC 2017).

Run:  python examples/quickstart.py
"""

from repro import (
    bar_yehuda_maxis,
    certify_ratio,
    exact_max_weight_is,
    gnp,
    theorem2_maxis,
    uniform_weights,
)
from repro.bench import format_table


def main() -> None:
    # A 100-node weighted random graph (small enough for the exact solver).
    graph = uniform_weights(gnp(100, 0.06, seed=7), low=1, high=100, seed=8)
    eps = 0.5
    print(f"graph: n={graph.n}, m={graph.m}, Δ={graph.max_degree}, "
          f"w(V)={graph.total_weight():.1f}")

    # The paper's algorithm (Theorem 2).
    fast = theorem2_maxis(graph, eps=eps, seed=42)

    # The previous best (Δ-approximation in O(MIS · log W) rounds).
    baseline = bar_yehuda_maxis(graph, seed=42)

    # Ground truth for this small instance.
    _, opt = exact_max_weight_is(graph)

    cert = certify_ratio(graph, fast.independent_set,
                         (1 + eps) * graph.max_degree, opt=opt)
    print(f"\nexact OPT = {opt:.1f}")
    print(f"(1+ε)Δ guarantee certified: {cert.holds} "
          f"(achieved {cert.achieved:.1f} >= required {cert.required:.1f})")

    rows = [
        ["theorem 2 (this paper)", fast.size, f"{fast.weight(graph):.1f}",
         f"{opt / fast.weight(graph):.2f}", fast.rounds],
        ["Bar-Yehuda et al. [8]", baseline.size, f"{baseline.weight(graph):.1f}",
         f"{opt / baseline.weight(graph):.2f}", baseline.rounds],
    ]
    print()
    print(format_table(
        ["algorithm", "|I|", "w(I)", "OPT/w(I)", "rounds"], rows
    ))


if __name__ == "__main__":
    main()
