#!/usr/bin/env python
"""Writing your own node program (the docs/tutorial.md walkthrough, live).

Implements a distributed triangle counter, runs it under LOCAL and shows
the CONGEST rejection, then wraps a custom MIS rule and plugs it into the
paper's Theorem 1 pipeline as a black box — demonstrating that the
pipeline really is black-box-generic.

Run:  python examples/custom_algorithm.py
"""

from repro.core import certify_fraction_bound, theorem1_maxis
from repro.exceptions import BandwidthExceeded
from repro.graphs import gnp, uniform_weights
from repro.mis import run_mis
from repro.simulator import BandwidthPolicy, NodeAlgorithm, Trace, run


class TriangleCount(NodeAlgorithm):
    """Each node counts the triangles through itself (LOCAL: ships lists)."""

    def on_start(self, ctx):
        ctx.broadcast(ctx.neighbors)

    def on_round(self, ctx, inbox):
        mine = set(ctx.neighbors)
        ctx.halt(sum(len(mine & set(t)) for t in inbox.values()) // 2)


class HighestDegreeMIS(NodeAlgorithm):
    """A custom MIS rule: highest (degree, id) among undecided joins.

    Deterministic and correct (same silent-neighbour discipline as the
    built-in black boxes) — quality differs from Luby, which is the point:
    the Theorem 1 pipeline accepts it untouched.
    """

    def on_start(self, ctx):
        if ctx.degree == 0:
            ctx.halt(True)
            return
        ctx.broadcast((0, ctx.degree))

    def on_round(self, ctx, inbox):
        if ctx.round_index % 2 == 1:
            mine = (ctx.degree, ctx.node_id)
            claims = [(m[1], s) for s, m in inbox.items() if m[0] == 0]
            if all(mine > other for other in claims):
                ctx.broadcast((1,))
                ctx.halt(True)
        else:
            if any(m[0] == 1 for m in inbox.values()):
                ctx.halt(False)
            else:
                ctx.broadcast((0, ctx.degree))


def my_mis(graph, *, seed=None, policy=None, n_bound=None, max_rounds=None):
    return run_mis(graph, HighestDegreeMIS, seed=seed, policy=policy,
                   n_bound=n_bound, max_rounds=max_rounds, deterministic=True)


def main() -> None:
    graph = gnp(300, 0.15, seed=5)

    print("1. custom triangle counter (LOCAL model):")
    trace = Trace()
    result = run(graph, TriangleCount, policy=BandwidthPolicy.local(), trace=trace)
    print(f"   {sum(result.outputs.values()) // 3} triangles in "
          f"{result.metrics.rounds} round; "
          f"largest message {result.metrics.max_message_bits} bits")
    print("   timeline:")
    for line in trace.render_timeline(max_rounds=2).splitlines():
        print("    ", line)

    print("\n2. the same program under strict CONGEST:")
    try:
        run(graph, TriangleCount)
    except BandwidthExceeded as exc:
        print(f"   rejected -> {exc}")

    print("\n3. a custom MIS black box inside Theorem 1:")
    weighted = uniform_weights(graph, 1, 50, seed=6)
    eps = 0.5
    res = theorem1_maxis(weighted, eps, mis=my_mis, seed=7)
    cert = certify_fraction_bound(
        weighted, res.independent_set, (1 + eps) * (weighted.max_degree + 1)
    )
    print(f"   w(I) = {res.weight(weighted):.1f} in {res.rounds} rounds; "
          f"Remark bound holds: {cert.holds}")


if __name__ == "__main__":
    main()
