#!/usr/bin/env python
"""Wireless transmission scheduling on a unit-disk network.

The motivating workload for distributed MaxIS: sensors in the plane
interfere when they are within radio range (a unit-disk graph), each has a
queue of pending data (its weight), and in every scheduling epoch we want
to activate a non-interfering set of maximum total backlog — a
maximum-weight independent set, computed *by the network itself* in few
CONGEST rounds.

This example schedules several epochs: in each epoch the network runs
Theorem 2, the chosen senders drain their queues, and everyone else's
queue grows.  It prints per-epoch throughput and compares against the
greedy centralized scheduler (which a real deployment could not run — it
needs global knowledge).

Run:  python examples/wireless_scheduling.py
"""

import numpy as np

from repro import greedy_maxis, theorem2_maxis
from repro.bench import format_table
from repro.core import assert_independent
from repro.graphs import random_geometric


def main() -> None:
    rng = np.random.default_rng(2024)
    network = random_geometric(250, radius=0.09, seed=11)
    print(f"unit-disk network: n={network.n}, m={network.m}, "
          f"Δ={network.max_degree}")

    queues = {v: float(rng.integers(1, 50)) for v in network.nodes}
    eps = 0.5
    rows = []
    total_sent_distributed = 0.0
    total_sent_centralized = 0.0

    for epoch in range(5):
        weighted = network.with_weights(queues)

        # Distributed: the network elects the epoch's transmission set.
        schedule = theorem2_maxis(weighted, eps=eps, seed=100 + epoch)
        assert_independent(weighted, schedule.independent_set)
        sent = schedule.weight(weighted)
        total_sent_distributed += sent

        # Centralized reference on the same queues.
        central = greedy_maxis(weighted)
        total_sent_centralized += weighted.total_weight(central)

        rows.append([
            epoch,
            schedule.size,
            f"{sent:.0f}",
            schedule.rounds,
            len(central),
            f"{weighted.total_weight(central):.0f}",
        ])

        # Chosen senders drain; everyone else accumulates new traffic.
        for v in network.nodes:
            if v in schedule.independent_set:
                queues[v] = float(rng.integers(1, 10))
            else:
                queues[v] += float(rng.integers(0, 20))

    print()
    print(format_table(
        ["epoch", "senders", "drained", "CONGEST rounds",
         "greedy senders", "greedy drained"],
        rows,
    ))
    ratio = total_sent_distributed / max(total_sent_centralized, 1e-9)
    print(f"\n5-epoch throughput vs centralized greedy: {100 * ratio:.1f}%")
    print("(the distributed schedule needs no global knowledge and ran in "
          "tens of O(log n)-bit rounds per epoch)")


if __name__ == "__main__":
    main()
