#!/usr/bin/env python
"""Influencer selection on a power-law social graph.

Social/follower graphs are hub-heavy: a few nodes have huge degree, but
the arboricity stays tiny (they are sparse overall).  Selecting a set of
mutually non-adjacent "influencers" maximizing total reach-value is a
MaxIS instance where the paper's two weighted pipelines offer different
promises:

* Theorem 2: factor `(1+ε)Δ` — terrible when a hub drives Δ into the
  hundreds;
* Theorem 3: factor `8(1+ε)α` — independent of the hubs.

The example selects influencer sets with both and reports the guarantees
and the measured value against the centralized greedy reference.

Run:  python examples/social_influencers.py
"""

import numpy as np

from repro import greedy_maxis, low_arboricity_maxis, theorem2_maxis
from repro.bench import format_table
from repro.graphs import arboricity, degeneracy, exponential_weights, power_law


def main() -> None:
    eps = 0.5
    rows = []
    for n in (300, 600):
        g = power_law(n, exponent=2.1, min_degree=1, seed=n)
        # Reach value: heavy-tailed, like real engagement metrics.
        g = exponential_weights(g, scale=10.0, seed=n + 1)
        alpha = arboricity(g)

        thm3 = low_arboricity_maxis(g, eps, alpha=alpha, seed=7)
        thm2 = theorem2_maxis(g, eps, seed=7)
        reference = g.total_weight(greedy_maxis(g))

        rows.append([
            n,
            g.max_degree,
            alpha,
            degeneracy(g),
            f"{8 * (1 + eps) * alpha:.0f}",
            f"{(1 + eps) * g.max_degree:.0f}",
            f"{thm3.weight(g):.0f}",
            f"{thm2.weight(g):.0f}",
            f"{reference:.0f}",
            thm3.rounds,
            thm2.rounds,
        ])

    print(format_table(
        ["n", "Δ", "α", "degeneracy", "8(1+ε)α", "(1+ε)Δ",
         "w thm3", "w thm2", "w greedy", "rounds thm3", "rounds thm2"],
        rows,
    ))
    print("\nPower-law graphs keep α tiny while hubs inflate Δ — the")
    print("arboricity guarantee (column 5) stays in the tens while the")
    print("Δ-based one (column 6) blows up; measured values are similar,")
    print("so Theorem 3 buys a much stronger promise on this workload.")


if __name__ == "__main__":
    main()
