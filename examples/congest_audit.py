#!/usr/bin/env python
"""Auditing CONGEST conformance: message-size accounting in action.

The CONGEST model allows O(log n) bits per message per edge per round.
The simulator charges every payload and can either enforce the budget
strictly (raising on violation) or audit it.  This example runs the
pipeline under three policies and prints the traffic profile — and then
deliberately breaks the budget to show the enforcement.

Run:  python examples/congest_audit.py
"""

from repro import BandwidthPolicy, gnp, theorem2_maxis, uniform_weights
from repro.bench import format_table
from repro.exceptions import BandwidthExceeded
from repro.graphs import path
from repro.simulator import NodeAlgorithm, run


class Chatty(NodeAlgorithm):
    """A deliberately non-CONGEST algorithm: ships a huge string."""

    def on_start(self, ctx):
        ctx.broadcast("x" * 4096)

    def on_round(self, ctx, inbox):
        ctx.halt(None)


def main() -> None:
    g = uniform_weights(gnp(150, 0.06, seed=1), 1, 1000, seed=2)

    rows = []
    for name, policy in [
        ("CONGEST strict (factor 32)", BandwidthPolicy.congest(factor=32)),
        ("CONGEST audit (factor 8)", BandwidthPolicy.congest(factor=8, strict=False)),
        ("LOCAL (unbounded)", BandwidthPolicy.local()),
    ]:
        res = theorem2_maxis(g, 0.5, seed=3, policy=policy)
        m = res.metrics
        rows.append([
            name, m.rounds, m.messages, m.total_bits,
            m.max_message_bits, len(m.violations),
        ])

    print(format_table(
        ["policy", "rounds", "messages", "total bits",
         "max msg bits", "violations"],
        rows,
    ))

    print("\nbudget at n̄=256, factor 32:",
          BandwidthPolicy.congest(factor=32).budget_bits(256), "bits/message")

    print("\nrunning a deliberately chatty algorithm under strict CONGEST:")
    try:
        run(path(4), Chatty)
    except BandwidthExceeded as exc:
        print(f"  rejected as expected -> {exc}")


if __name__ == "__main__":
    main()
