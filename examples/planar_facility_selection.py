#!/usr/bin/env python
"""Facility selection on planar/low-arboricity infrastructure graphs.

Road networks and other planar infrastructure graphs have arboricity at
most 3 even when a few junctions have high degree — exactly the regime
where Theorem 3's ``8(1+ε)α``-approximation beats the ``(1+ε)Δ`` bound.

Scenario: cities on a road grid (plus a few high-degree hub junctions)
bid revenue values; we must pick non-adjacent sites (zoning: no two
neighbouring junctions both get a facility) maximizing total revenue.

The example contrasts the two guarantees and the measured results.

Run:  python examples/planar_facility_selection.py
"""

from repro import low_arboricity_maxis, theorem2_maxis, uniform_weights
from repro.bench import format_table
from repro.graphs import arboricity, grid_2d, planted_heavy_hub
from repro.graphs.generators import disjoint_union


def main() -> None:
    eps = 0.5
    instances = {
        "road grid 12x12": uniform_weights(grid_2d(12, 12), 1, 100, seed=1),
        "grid + hub junctions": uniform_weights(
            planted_heavy_hub(200, 60, 2.0 / 200, seed=2), 1, 100, seed=3
        ),
        "two districts": uniform_weights(
            disjoint_union([grid_2d(8, 8), grid_2d(6, 10)]), 1, 100, seed=4
        ),
    }

    rows = []
    for name, g in instances.items():
        alpha = arboricity(g)
        delta = g.max_degree
        arb = low_arboricity_maxis(g, eps, alpha=alpha, seed=5)
        dlt = theorem2_maxis(g, eps, seed=6)
        rows.append([
            name,
            alpha,
            delta,
            f"{8 * (1 + eps) * alpha:.0f}",
            f"{(1 + eps) * delta:.0f}",
            f"{arb.weight(g):.0f}",
            f"{dlt.weight(g):.0f}",
            arb.rounds,
            dlt.rounds,
        ])

    print(format_table(
        ["instance", "α", "Δ", "8(1+ε)α", "(1+ε)Δ",
         "w(I) thm3", "w(I) thm2", "rounds thm3", "rounds thm2"],
        rows,
    ))
    print("\nWhen α << Δ/(8(1+ε)) the arboricity guarantee (column 4) is the")
    print("stronger promise; Theorem 3 pays a log n factor in rounds for it.")


if __name__ == "__main__":
    main()
