#!/usr/bin/env python
"""Figure 1, step by step: why fast IS-approximation implies fast MIS.

The paper's Theorem 4 lower bound works by reduction: if any algorithm
found an Ω(n/Δ)-size independent set in o(log* n) rounds, you could use it
to find a *maximal* independent set of a cycle in o(log* n) rounds,
contradicting Naor's classical bound.  The gadget is the cycle of cliques
``C1`` (Figure 1).

This script executes the reduction (Algorithm 7) with the one-round
ranking algorithm as the black box and prints each stage: the inner set on
``C1``, its projection to the cycle, the gap structure, and the sequential
fill — then shows why the clique blow-up matters by running the same
black box on the bare cycle (much bigger gaps).

Run:  python examples/lower_bound_walkthrough.py
"""

from repro import boppana_is, cycle
from repro.bench import format_table
from repro.core import is_maximal_independent_set
from repro.lowerbound import log_star, max_gap, rand_mis


def main() -> None:
    n0 = 60
    outcome = rand_mis(n0, lambda g, seed=None: boppana_is(g, seed=seed), seed=3)

    print(f"cycle C: n0 = {n0} nodes;   cycle of cliques C1: "
          f"{n0} cliques x {outcome.n1} nodes = {n0 * outcome.n1} nodes")
    print(f"log*({n0 * outcome.n1}) = {log_star(n0 * outcome.n1)} — the bound "
          "any correct algorithm must pay (Theorem 4)")

    print("\nstep 1 — run A (one-round ranking) on C1:")
    print(f"  |I1| = {outcome.inner_set_size} nodes, {outcome.inner_rounds} round(s)")

    print("step 2 — project I1 back to C (clique hit -> cycle node):")
    print(f"  |I| = {len(outcome.projected)} cycle nodes")
    print(f"  max gap between consecutive I-nodes: {max(outcome.gaps)}")

    print("step 3 — fill the gaps with a sequential greedy MIS:")
    print(f"  longest gap component: {outcome.fill_rounds} "
          f"(= extra rounds to fill)")
    mis_ok = is_maximal_independent_set(cycle(n0), outcome.mis)
    print(f"  final MIS of C: {len(outcome.mis)} nodes, maximal: {mis_ok}")
    print(f"  effective rounds: {outcome.effective_rounds} "
          "(inner + fill)")

    print("\nwhy the cliques? the same black box on the BARE cycle:")
    rows = []
    for n in (60, 120, 240):
        bare = boppana_is(cycle(n), seed=4)
        # Fixed clique size keeps the blow-up's memory footprint sane
        # (n1 = 2*n0 at n0=240 would already mean ~20M edges).
        blown = rand_mis(n, lambda g, seed=None: boppana_is(g, seed=seed),
                         n1=60, seed=4)
        rows.append([n, max_gap(n, bare.independent_set), max(blown.gaps)])
    print(format_table(
        ["cycle n0", "max gap (bare cycle)", "max gap (cycle of cliques)"],
        rows,
    ))
    print("\nAt laptop scale both stay small (bare-cycle gaps grow only like")
    print("log n0 / log log n0); the reduction's point is asymptotic: on the")
    print("bare cycle SOME length-O(T) window fails with non-negligible")
    print("probability once n0 >> T, while the n1-fold clique blow-up drives")
    print("each window's failure probability below 1/n0 — that amplification")
    print("is what Propositions 8-9 need, and why C1 exists at all.")


if __name__ == "__main__":
    main()
