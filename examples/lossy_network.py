#!/usr/bin/env python
"""Theorem 2 on a lossy network: what the guarantee is worth in practice.

The paper proves its ``(1+eps)Delta``-approximation in the reliable
synchronous model — every message sent in round ``r`` arrives in round
``r + 1``.  Real networks drop packets.  This example injects seeded,
reproducible message loss (``repro.faults``) at increasing rates and
prints the degradation table: is the returned set even independent any
more, and what fraction of the fault-free weight survives?

Two things to notice in the output:

* node programs draw the *same private coins* with and without faults
  (the fault stream is a separate RNG), so every difference you see is
  caused by delivery alone;
* independence itself can break — a lost "I joined" announcement lets
  two neighbours both enter the set — which is why the resilience
  harness re-validates every output from scratch instead of trusting
  the theorem.

Run:  python examples/lossy_network.py
"""

from repro.bench import format_table
from repro.core import is_independent, theorem2_maxis
from repro.faults import MessageLoss
from repro.graphs import gnp, uniform_weights
from repro.simulator import install_faults


def main() -> None:
    g = uniform_weights(gnp(60, 0.08, seed=14), 1, 20, seed=14)
    seeds = (101, 102, 103)

    # Fault-free reference: one run per seed.
    baseline = {}
    for s in seeds:
        res = theorem2_maxis(g, eps=0.5, seed=s)
        baseline[s] = res.weight(g)
        assert is_independent(g, res.independent_set)

    rows = []
    for loss in (0.0, 0.02, 0.05, 0.1, 0.2):
        valid = 0
        retentions = []
        drops = []
        for s in seeds:
            if loss > 0:
                with install_faults(MessageLoss(loss)):
                    res = theorem2_maxis(g, eps=0.5, seed=s)
            else:
                res = theorem2_maxis(g, eps=0.5, seed=s)
            drops.append(res.metrics.fault_dropped_messages)
            if is_independent(g, res.independent_set):
                valid += 1
                retentions.append(res.weight(g) / baseline[s])
        rows.append([
            f"{loss:.0%}",
            f"{valid}/{len(seeds)}",
            f"{sum(retentions) / len(retentions):.1%}" if retentions else "—",
            f"{sum(drops) / len(drops):.0f}",
        ])

    print(f"Theorem 2 under message loss  (n={g.n}, m={g.m}, "
          f"{len(seeds)} seeds per rate)\n")
    print(format_table(
        ["loss rate", "still independent", "weight retained", "msgs lost/run"],
        rows,
    ))
    print("\nSame sweep from the command line:")
    print("  repro resilience --algorithm thm2 --graph gnp:60,0.08 "
          "--weights uniform:1,20 --loss 0,0.05,0.1,0.2")


if __name__ == "__main__":
    main()
