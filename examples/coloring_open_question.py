#!/usr/bin/env python
"""Open Question 2 (§8): why colouring doesn't (yet) give fast MaxIS.

Sequentially, a ``(Δ+1)``-colouring immediately gives a
``(Δ+1)``-approximate MaxIS: take the heaviest colour class.  §8 of the
paper points out the distributed catch — *finding* the heaviest class
takes ``Ω(D)`` rounds (D = diameter), because the class weights live all
over the network.

This example makes the obstruction concrete on long 2xL grid strips
(diameter = L, constant Δ):

1. colour the graph distributedly (random trials, ≤ Δ+1 colours,
   O(log n) rounds);
2. select the heaviest class via BFS-tree convergecasts + a decision
   flood — watch the rounds grow linearly in L;
3. run Theorem 2 on the same instance — rounds stay flat.

Run:  python examples/coloring_open_question.py
"""

from repro import theorem2_maxis, uniform_weights
from repro.bench import format_table
from repro.coloring import distributed_color_class_maxis, random_coloring
from repro.graphs import grid_2d


def main() -> None:
    rows = []
    for length in (10, 20, 40, 80):
        g = uniform_weights(grid_2d(2, length), 1, 20, seed=length)

        coloring = random_coloring(g, seed=1)
        via_class = distributed_color_class_maxis(g, coloring.colors)
        via_thm2 = theorem2_maxis(g, eps=0.5, seed=2)

        rows.append([
            f"2x{length}",
            length,                       # the diameter
            coloring.num_colors,
            coloring.rounds,
            via_class.rounds,
            f"{via_class.weight(g):.0f}",
            via_thm2.rounds,
            f"{via_thm2.weight(g):.0f}",
        ])

    print(format_table(
        ["grid", "diameter", "colors", "coloring rounds",
         "class-select rounds", "class w(I)", "thm2 rounds", "thm2 w(I)"],
        rows,
    ))
    print("\nColumn 5 grows linearly with the diameter (the Ω(D) barrier of")
    print("§8); Theorem 2's rounds (column 7) are diameter-independent.")
    print("Whether any colouring-based approach can avoid the barrier is")
    print("exactly the paper's Open Question 2.")


if __name__ == "__main__":
    main()
